#include "support/trace.hh"

#if TEPIC_TRACING_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace tepic::support::trace {

namespace {

struct Event
{
    const char *name = nullptr;
    const char *cat = nullptr;
    char phase = 'X';          // 'X' complete, 'i' instant, 'C' counter
    std::uint64_t tsNs = 0;    // since start()
    std::uint64_t durNs = 0;   // 'X' only
    std::uint32_t tid = 0;
    double value = 0.0;        // 'C' only
    std::string args;          // preformatted JSON object, or empty
};

struct ThreadBuffer
{
    ThreadBuffer();
    ~ThreadBuffer();

    std::mutex mutex;
    std::vector<Event> events;
    std::uint32_t tid = 0;
};

struct Registry
{
    std::mutex mutex;
    std::vector<ThreadBuffer *> live;
    std::vector<Event> retired;   ///< events from exited threads
    std::uint32_t nextTid = 1;
    std::chrono::steady_clock::time_point epoch;
    std::string path;
    std::atomic<bool> enabled{false};
    bool started = false;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local bool t_hasBuffer = false;

ThreadBuffer::ThreadBuffer()
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    tid = r.nextTid++;
    r.live.push_back(this);
    t_hasBuffer = true;
}

ThreadBuffer::~ThreadBuffer()
{
    auto &r = registry();
    std::lock_guard<std::mutex> registry_lock(r.mutex);
    std::lock_guard<std::mutex> buffer_lock(mutex);
    // Retire only into a live session. stop() keeps r.started true
    // until after its drain, so a worker exiting concurrently with
    // stop() either retires here first (and the drain picks the
    // events out of r.retired) or is drained directly — its spans are
    // never dropped. Once the session is over, anything still
    // buffered carries a dead epoch's timestamps and must not
    // resurface in the next session.
    if (r.started) {
        r.retired.insert(r.retired.end(),
                         std::make_move_iterator(events.begin()),
                         std::make_move_iterator(events.end()));
    }
    std::erase(r.live, this);
    t_hasBuffer = false;
}

ThreadBuffer &
threadBuffer()
{
    thread_local ThreadBuffer buffer;
    return buffer;
}

std::uint64_t
nowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - registry().epoch)
            .count());
}

void
append(Event event)
{
    auto &buffer = threadBuffer();
    event.tid = buffer.tid;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    // Re-check under the buffer mutex: collectJson() holds this mutex
    // while draining, so an append racing with stop() either lands
    // before the drain (and is collected) or — because the mutex
    // hand-off makes stop()'s enabled=false store visible — is
    // dropped here. It can never land in an already-drained buffer
    // and leak into the next session with a stale-epoch timestamp.
    if (!registry().enabled.load(std::memory_order_relaxed))
        return;
    buffer.events.push_back(std::move(event));
}

void
formatEvent(std::string &out, const Event &event)
{
    char num[64];
    out += "{\"name\":";
    out += jsonQuote(event.name);
    out += ",\"cat\":";
    out += jsonQuote(event.cat);
    out += ",\"ph\":\"";
    out += event.phase;
    out += '"';
    std::snprintf(num, sizeof(num), ",\"ts\":%.3f",
                  double(event.tsNs) / 1000.0);
    out += num;
    if (event.phase == 'X') {
        std::snprintf(num, sizeof(num), ",\"dur\":%.3f",
                      double(event.durNs) / 1000.0);
        out += num;
    }
    std::snprintf(num, sizeof(num), ",\"pid\":1,\"tid\":%u", event.tid);
    out += num;
    if (event.phase == 'i')
        out += ",\"s\":\"t\"";
    if (event.phase == 'C') {
        std::snprintf(num, sizeof(num), ",\"args\":{\"value\":%.12g}",
                      event.value);
        out += num;
    } else if (!event.args.empty()) {
        out += ",\"args\":";
        out += event.args;
    }
    out += '}';
}

/** Gather every buffered event (clearing the buffers) and render. */
std::string
collectJson()
{
    auto &r = registry();
    std::vector<Event> all;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        all = std::move(r.retired);
        r.retired.clear();
        for (ThreadBuffer *buffer : r.live) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            all.insert(all.end(),
                       std::make_move_iterator(buffer->events.begin()),
                       std::make_move_iterator(buffer->events.end()));
            buffer->events.clear();
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const Event &a, const Event &b) {
                         if (a.tsNs != b.tsNs)
                             return a.tsNs < b.tsNs;
                         return a.tid < b.tid;
                     });

    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const Event &event : all) {
        if (!first)
            out += ",\n";
        first = false;
        formatEvent(out, event);
    }
    out += "]}\n";
    return out;
}

} // namespace

bool
enabled()
{
    return registry().enabled.load(std::memory_order_relaxed);
}

void
start(const std::string &path)
{
    auto &r = registry();
    if (r.enabled.load(std::memory_order_relaxed))
        TEPIC_WARN("trace::start() while already tracing; restarting");
    r.enabled.store(false, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.retired.clear();
        for (ThreadBuffer *buffer : r.live) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            buffer->events.clear();
        }
        r.path = path;
        r.epoch = std::chrono::steady_clock::now();
        r.started = true;
    }
    r.enabled.store(true, std::memory_order_release);
}

void
stop()
{
    auto &r = registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        if (!r.started)
            return;
    }
    r.enabled.store(false, std::memory_order_relaxed);
    // r.started stays true across the drain so threads exiting right
    // now (a ThreadPool draining on destruct) still retire their
    // buffers into r.retired where collectJson() finds them.
    const std::string json = collectJson();
    std::string path;
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.started = false;
        path = r.path;
        r.path.clear();
    }
    if (path.empty())
        return;
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file) {
        TEPIC_WARN("trace: cannot write '", path, "'");
        return;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
}

std::string
stopToJson()
{
    auto &r = registry();
    r.enabled.store(false, std::memory_order_relaxed);
    // Same retirement ordering as stop(): drain first, then end the
    // session.
    const std::string json = collectJson();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.started = false;
        r.path.clear();
    }
    return json;
}

void
instant(const char *name, const char *cat)
{
    if (!enabled())
        return;
    Event event;
    event.name = name;
    event.cat = cat;
    event.phase = 'i';
    event.tsNs = nowNs();
    append(std::move(event));
}

void
counter(const char *name, double value, const char *cat)
{
    if (!enabled())
        return;
    Event event;
    event.name = name;
    event.cat = cat;
    event.phase = 'C';
    event.tsNs = nowNs();
    event.value = value;
    append(std::move(event));
}

Span::Span(const char *name, const char *cat)
{
    if (!enabled())
        return;
    name_ = name;
    cat_ = cat;
    startNs_ = nowNs();
    active_ = true;
}

Span::Span(const char *name, const char *cat, std::string args)
{
    if (!enabled())
        return;
    name_ = name;
    cat_ = cat;
    args_ = std::move(args);
    startNs_ = nowNs();
    active_ = true;
}

Span::~Span()
{
    // A span that straddles stop() is dropped rather than recorded
    // into the next session: the enabled() check here pairs with the
    // one in the constructor.
    if (!active_ || !enabled())
        return;
    Event event;
    event.name = name_;
    event.cat = cat_;
    event.phase = 'X';
    event.tsNs = startNs_;
    event.durNs = nowNs() - startNs_;
    event.args = std::move(args_);
    append(std::move(event));
}

bool
threadHasBuffer()
{
    return t_hasBuffer;
}

std::size_t
pendingEvents()
{
    auto &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::size_t n = r.retired.size();
    for (ThreadBuffer *buffer : r.live) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        n += buffer->events.size();
    }
    return n;
}

} // namespace tepic::support::trace

#endif // TEPIC_TRACING_ENABLED
