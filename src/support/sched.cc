#include "support/sched.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace tepic::support::sched {

namespace {

/** Raw attach/detach observations for one pool worker. */
struct WorkerEvent
{
    std::uint64_t attachNs = 0;
    std::uint64_t detachNs = 0;
    bool attached = false;  ///< attach seen during this session
    bool detached = false;
};

struct Recorder
{
    std::mutex mutex;
    std::vector<TaskRecord> tasks;
    // Indexed by pool worker id; small and dense in practice.
    std::vector<WorkerEvent> workerEvents;
    std::chrono::steady_clock::time_point epoch;
    unsigned jobs = 0;
    std::atomic<bool> enabled{false};
    bool everStarted = false;
};

Recorder &
recorder()
{
    static Recorder r;
    return r;
}

thread_local std::uint32_t t_worker = kMainWorker;

std::uint64_t
nowNs()
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - recorder().epoch)
            .count());
}

WorkerEvent &
workerSlot(Recorder &r, std::uint32_t worker)
{
    if (worker >= r.workerEvents.size())
        r.workerEvents.resize(worker + 1);
    return r.workerEvents[worker];
}

// ---------------------------------------------------------------------------
// Analysis helpers.

/**
 * Piecewise-constant count of declared-but-unstarted tasks over time:
 * +1 at enqueue, -1 at start (tasks that never start stay counted to
 * the end). Drives the dependency-stall vs queue-empty attribution —
 * a worker idle while undone work exists is stalled on dependencies
 * (dep edges or the engine's phase barriers), a worker idle with
 * nothing left to hand out sees an empty queue.
 */
class OutstandingSweep
{
  public:
    explicit
    OutstandingSweep(const std::vector<TaskRecord> &tasks)
    {
        std::vector<std::pair<std::uint64_t, int>> deltas;
        for (const auto &t : tasks) {
            if (t.decl.cacheHit)
                continue;
            deltas.emplace_back(t.enqueueNs, +1);
            if (t.ran)
                deltas.emplace_back(t.startNs, -1);
        }
        std::sort(deltas.begin(), deltas.end());
        std::uint64_t prev = 0;
        int count = 0;
        for (const auto &[ts, delta] : deltas) {
            if (ts != prev) {
                times_.push_back(prev);
                counts_.push_back(count);
                prev = ts;
            }
            count += delta;
        }
        times_.push_back(prev);
        counts_.push_back(count);
    }

    /**
     * Split the idle interval [a, b) into (depStall, queueEmpty)
     * nanoseconds; the two always tile b - a exactly.
     */
    std::pair<std::uint64_t, std::uint64_t>
    attribute(std::uint64_t a, std::uint64_t b) const
    {
        std::uint64_t stall = 0;
        std::uint64_t empty = 0;
        if (b <= a)
            return {0, 0};
        // Segment i covers [times_[i], times_[i+1]) at counts_[i].
        std::size_t i =
            std::size_t(std::upper_bound(times_.begin(), times_.end(),
                                         a) -
                        times_.begin());
        i = i ? i - 1 : 0;
        std::uint64_t cursor = a;
        while (cursor < b) {
            const std::uint64_t seg_end =
                i + 1 < times_.size() ? std::min(times_[i + 1], b)
                                      : b;
            const std::uint64_t span = seg_end - cursor;
            if (counts_[i] > 0)
                stall += span;
            else
                empty += span;
            cursor = seg_end;
            ++i;
        }
        return {stall, empty};
    }

  private:
    std::vector<std::uint64_t> times_;
    std::vector<int> counts_;
};

std::string
workerName(std::uint32_t worker)
{
    if (worker == kMainWorker)
        return "main";
    return "w" + std::to_string(worker);
}

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    return buf;
}

bool
writeStringFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        TEPIC_WARN("cannot open sched report output '", path, "'");
        return false;
    }
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                    text.size();
    std::fclose(f);
    if (!ok)
        TEPIC_WARN("short write to sched report output '", path, "'");
    return ok;
}

} // namespace

// ---------------------------------------------------------------------------
// Recording.

bool
enabled()
{
    return recorder().enabled.load(std::memory_order_relaxed);
}

void
startSession(unsigned jobs)
{
    auto &r = recorder();
    r.enabled.store(false, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.tasks.clear();
        r.workerEvents.clear();
        r.epoch = std::chrono::steady_clock::now();
        r.jobs = jobs;
        r.everStarted = true;
    }
    r.enabled.store(true, std::memory_order_release);
}

void
endSession()
{
    recorder().enabled.store(false, std::memory_order_relaxed);
}

std::uint64_t
declareTask(TaskDecl decl)
{
    if (!enabled())
        return ~std::uint64_t(0);
    auto &r = recorder();
    const std::uint64_t ts = nowNs();
    std::lock_guard<std::mutex> lock(r.mutex);
    TaskRecord record;
    record.id = r.tasks.size();
    record.decl = std::move(decl);
    record.enqueueNs = ts;
    // Sentinel deps come from ids handed out while recording was
    // disabled (a session started mid-build); drop them. A real
    // forward reference would make the graph ill-formed.
    std::erase(record.decl.deps, ~std::uint64_t(0));
    for (std::uint64_t dep : record.decl.deps) {
        TEPIC_ASSERT(dep < record.id,
                     "sched task depends on a not-yet-declared task");
    }
    r.tasks.push_back(std::move(record));
    return r.tasks.back().id;
}

void
taskStarted(std::uint64_t id)
{
    if (!enabled())
        return;
    auto &r = recorder();
    const std::uint64_t ts = nowNs();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (id >= r.tasks.size())
        return;
    auto &t = r.tasks[id];
    t.startNs = ts;
    t.worker = t_worker;
}

void
taskFinished(std::uint64_t id)
{
    if (!enabled())
        return;
    auto &r = recorder();
    const std::uint64_t ts = nowNs();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (id >= r.tasks.size())
        return;
    auto &t = r.tasks[id];
    t.finishNs = ts;
    t.ran = true;
}

void
workerAttach(std::uint32_t worker)
{
    t_worker = worker;
    if (!enabled())
        return;
    auto &r = recorder();
    const std::uint64_t ts = nowNs();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = workerSlot(r, worker);
    slot.attachNs = ts;
    slot.attached = true;
}

void
workerDetach()
{
    const std::uint32_t worker = t_worker;
    t_worker = kMainWorker;
    if (worker == kMainWorker || !enabled())
        return;
    auto &r = recorder();
    const std::uint64_t ts = nowNs();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = workerSlot(r, worker);
    slot.detachNs = ts;
    slot.detached = true;
}

std::uint32_t
currentWorker()
{
    return t_worker;
}

void
resetForTest()
{
    auto &r = recorder();
    r.enabled.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(r.mutex);
    r.tasks.clear();
    r.workerEvents.clear();
    r.jobs = 0;
    r.everStarted = false;
}

// ---------------------------------------------------------------------------
// Analysis.

Analysis
analyze()
{
    Analysis out;
    std::vector<WorkerEvent> worker_events;
    {
        auto &r = recorder();
        std::lock_guard<std::mutex> lock(r.mutex);
        out.jobs = r.jobs;
        out.tasks = r.tasks;
        worker_events = r.workerEvents;
    }

    out.cacheHits = 0;
    out.edgeCount = 0;
    for (const auto &t : out.tasks) {
        out.edgeCount += t.decl.deps.size();
        if (t.decl.cacheHit)
            ++out.cacheHits;
    }

    // Build window: the span between the first declaration and the
    // last finish of tasks that actually ran.
    bool any_ran = false;
    std::uint64_t window_start = 0;
    std::uint64_t window_end = 0;
    for (const auto &t : out.tasks) {
        if (!t.ran)
            continue;
        if (!any_ran) {
            window_start = t.enqueueNs;
            window_end = t.finishNs;
            any_ran = true;
        } else {
            window_start = std::min(window_start, t.enqueueNs);
            window_end = std::max(window_end, t.finishNs);
        }
        out.totalWorkNs += t.durationNs();
    }
    out.windowStartNs = window_start;
    out.windowEndNs = window_end;
    out.makespanNs = window_end - window_start;

    // Acyclicity (Kahn). Declaration order already forbids forward
    // edges, but the report promises the check, so run it for real.
    const std::size_t n = out.tasks.size();
    std::vector<std::uint64_t> indegree(n, 0);
    std::vector<std::vector<std::uint64_t>> successors(n);
    for (const auto &t : out.tasks) {
        for (std::uint64_t dep : t.decl.deps) {
            if (dep >= n) {
                out.acyclic = false;
                continue;
            }
            successors[dep].push_back(t.id);
            ++indegree[t.id];
        }
    }
    std::vector<std::uint64_t> topo;
    topo.reserve(n);
    for (std::uint64_t id = 0; id < n; ++id)
        if (indegree[id] == 0)
            topo.push_back(id);
    for (std::size_t head = 0; head < topo.size(); ++head) {
        for (std::uint64_t next : successors[topo[head]])
            if (--indegree[next] == 0)
                topo.push_back(next);
    }
    if (topo.size() != n)
        out.acyclic = false;

    // Critical path: duration-weighted longest chain, ties broken
    // toward the smaller id so the reported chain is stable.
    if (out.acyclic && n > 0) {
        std::vector<std::uint64_t> dist(n, 0);
        std::vector<std::uint64_t> parent(n, ~std::uint64_t(0));
        for (std::uint64_t id : topo) {
            std::uint64_t best = 0;
            std::uint64_t best_parent = ~std::uint64_t(0);
            for (std::uint64_t dep : out.tasks[id].decl.deps) {
                if (dist[dep] > best ||
                    (dist[dep] == best && dep < best_parent)) {
                    best = dist[dep];
                    best_parent = dep;
                }
            }
            dist[id] = best + out.tasks[id].durationNs();
            parent[id] = best_parent;
        }
        std::uint64_t tail = 0;
        for (std::uint64_t id = 1; id < n; ++id)
            if (dist[id] > dist[tail])
                tail = id;
        out.criticalPathNs = dist[tail];
        for (std::uint64_t id = tail; id != ~std::uint64_t(0);
             id = parent[id]) {
            out.criticalPath.push_back(id);
        }
        std::reverse(out.criticalPath.begin(),
                     out.criticalPath.end());
    }

    if (out.makespanNs > 0) {
        out.achievedSpeedup =
            double(out.totalWorkNs) / double(out.makespanNs);
    }
    if (out.criticalPathNs > 0) {
        out.achievableSpeedup =
            double(out.totalWorkNs) / double(out.criticalPathNs);
    }

    // Time-bucketed concurrency profile across the build window.
    if (out.makespanNs > 0) {
        const std::size_t buckets =
            std::size_t(std::min<std::uint64_t>(64, out.makespanNs));
        out.bucketNs = (out.makespanNs + buckets - 1) / buckets;
        out.concurrency.assign(
            std::size_t((out.makespanNs + out.bucketNs - 1) /
                        out.bucketNs),
            0.0);
        for (const auto &t : out.tasks) {
            if (!t.ran || t.durationNs() == 0)
                continue;
            const std::uint64_t s = t.startNs - window_start;
            const std::uint64_t f = t.finishNs - window_start;
            for (std::size_t b = s / out.bucketNs;
                 b < out.concurrency.size(); ++b) {
                const std::uint64_t b0 = b * out.bucketNs;
                const std::uint64_t b1 = b0 + out.bucketNs;
                if (b0 >= f)
                    break;
                const std::uint64_t overlap =
                    std::min(f, b1) - std::max(s, b0);
                out.concurrency[b] +=
                    double(overlap) / double(out.bucketNs);
            }
        }
    }

    // Per-worker timelines. Workers come from attach events plus any
    // worker a task reported (covers pools spawned before the session
    // started, whose attach went unrecorded).
    std::set<std::uint32_t> worker_ids;
    for (std::uint32_t w = 0; w < worker_events.size(); ++w)
        if (worker_events[w].attached)
            worker_ids.insert(w);
    bool main_ran = false;
    for (const auto &t : out.tasks) {
        if (!t.ran)
            continue;
        if (t.worker == kMainWorker)
            main_ran = true;
        else
            worker_ids.insert(t.worker);
    }

    const OutstandingSweep sweep(out.tasks);
    const auto clamp = [&](std::uint64_t ts) {
        return std::min(std::max(ts, window_start), window_end);
    };
    const auto summarize = [&](std::uint32_t worker,
                               std::uint64_t attach,
                               std::uint64_t detach) {
        WorkerSummary w;
        w.worker = worker;
        w.name = workerName(worker);
        w.startNs = clamp(attach);
        w.endNs = std::max(clamp(detach), w.startNs);

        std::vector<std::pair<std::uint64_t, std::uint64_t>> busy;
        for (const auto &t : out.tasks) {
            if (t.ran && t.worker == worker) {
                busy.emplace_back(t.startNs, t.finishNs);
                w.busyNs += t.durationNs();
                ++w.tasksRun;
            }
        }
        std::sort(busy.begin(), busy.end());
        if (!busy.empty()) {
            w.startNs = std::min(w.startNs, busy.front().first);
            w.endNs = std::max(w.endNs, busy.back().second);
        }
        w.rampNs = w.startNs - window_start;
        std::uint64_t cursor = w.startNs;
        for (const auto &[s, f] : busy) {
            const auto [stall, empty] = sweep.attribute(cursor, s);
            w.depStallNs += stall;
            w.queueEmptyNs += empty;
            cursor = std::max(cursor, f);
        }
        const auto [stall, empty] = sweep.attribute(cursor, w.endNs);
        w.depStallNs += stall;
        w.queueEmptyNs += empty;
        TEPIC_ASSERT(w.rampNs + w.busyNs + w.queueEmptyNs +
                             w.depStallNs ==
                         w.endNs - window_start,
                     "sched worker timeline does not tile");
        return w;
    };

    if (main_ran)
        out.workers.push_back(
            summarize(kMainWorker, window_start, window_end));
    for (std::uint32_t w : worker_ids) {
        const bool known = w < worker_events.size() &&
                           worker_events[w].attached;
        const std::uint64_t attach =
            known ? worker_events[w].attachNs : window_start;
        const std::uint64_t detach =
            (known && worker_events[w].detached)
                ? worker_events[w].detachNs
                : window_end;
        out.workers.push_back(summarize(w, attach, detach));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Report.

std::string
reportJson(const std::string &name)
{
    const Analysis a = analyze();

    std::string out = "{\n  \"schema\": \"tepic-sched-v1\",\n";
    out += "  \"name\": " + jsonQuote(name) + ",\n";
    out += "  \"jobs\": " + std::to_string(a.jobs) + ",\n";

    // --- structure: exact-gated across --jobs -------------------------
    out += "  \"structure\": {\n";
    out += "    \"task_count\": " + std::to_string(a.tasks.size()) +
           ",\n";
    out += "    \"edge_count\": " + std::to_string(a.edgeCount) +
           ",\n";
    out += "    \"cache_hits\": " + std::to_string(a.cacheHits) +
           ",\n";
    out += "    \"acyclic\": ";
    out += a.acyclic ? "true" : "false";
    out += ",\n    \"tasks\": [";
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        const TaskRecord &t = a.tasks[i];
        out += i ? ",\n      " : "\n      ";
        out += "{\"id\": " + std::to_string(t.id);
        out += ", \"label\": " + jsonQuote(t.decl.label);
        out += ", \"kind\": " + jsonQuote(t.decl.kind);
        out += ", \"workload\": " + jsonQuote(t.decl.workload);
        out += ", \"scheme\": " + jsonQuote(t.decl.scheme);
        out += ", \"cache_hit\": ";
        out += t.decl.cacheHit ? "true" : "false";
        out += ", \"deps\": [";
        for (std::size_t d = 0; d < t.decl.deps.size(); ++d) {
            if (d)
                out += ", ";
            out += std::to_string(t.decl.deps[d]);
        }
        out += "]}";
    }
    out += a.tasks.empty() ? "]\n" : "\n    ]\n";
    out += "  },\n";

    // --- timing: wall-clock data, band-gated only ---------------------
    out += "  \"timing\": {\n";
    out += "    \"window\": {\"start_ns\": " +
           std::to_string(a.windowStartNs) +
           ", \"end_ns\": " + std::to_string(a.windowEndNs) + "},\n";
    out += "    \"makespan_ns\": " + std::to_string(a.makespanNs) +
           ",\n";
    out += "    \"total_work_ns\": " + std::to_string(a.totalWorkNs) +
           ",\n";
    out += "    \"critical_path_ns\": " +
           std::to_string(a.criticalPathNs) + ",\n";
    out += "    \"critical_path\": [";
    for (std::size_t i = 0; i < a.criticalPath.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(a.criticalPath[i]);
    }
    out += "],\n";
    out += "    \"speedup\": {\"achievable\": " +
           formatDouble(a.achievableSpeedup) +
           ", \"achieved\": " + formatDouble(a.achievedSpeedup) +
           "},\n";
    out += "    \"parallelism\": {\"bucket_ns\": " +
           std::to_string(a.bucketNs) + ", \"concurrency\": [";
    for (std::size_t i = 0; i < a.concurrency.size(); ++i) {
        if (i)
            out += ", ";
        out += formatDouble(a.concurrency[i]);
    }
    out += "]},\n";

    out += "    \"tasks\": [";
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
        const TaskRecord &t = a.tasks[i];
        out += i ? ",\n      " : "\n      ";
        out += "{\"id\": " + std::to_string(t.id);
        out += ", \"enqueue_ns\": " + std::to_string(t.enqueueNs);
        out += ", \"start_ns\": " + std::to_string(t.startNs);
        out += ", \"finish_ns\": " + std::to_string(t.finishNs);
        out += ", \"ran\": ";
        out += t.ran ? "true" : "false";
        out += ", \"worker\": ";
        if (!t.ran || t.worker == kNoWorker)
            out += "null";
        else
            out += jsonQuote(workerName(t.worker));
        out += "}";
    }
    out += a.tasks.empty() ? "],\n" : "\n    ],\n";

    out += "    \"workers\": [";
    for (std::size_t i = 0; i < a.workers.size(); ++i) {
        const WorkerSummary &w = a.workers[i];
        out += i ? ",\n      " : "\n      ";
        out += "{\"id\": " + jsonQuote(w.name);
        out += ", \"start_ns\": " + std::to_string(w.startNs);
        out += ", \"end_ns\": " + std::to_string(w.endNs);
        out += ", \"busy_ns\": " + std::to_string(w.busyNs);
        out += ", \"tasks\": " + std::to_string(w.tasksRun);
        out += ", \"idle\": {\"ramp_ns\": " +
               std::to_string(w.rampNs);
        out += ", \"queue_empty_ns\": " +
               std::to_string(w.queueEmptyNs);
        out += ", \"dep_stall_ns\": " +
               std::to_string(w.depStallNs);
        out += "}}";
    }
    out += a.workers.empty() ? "]\n" : "\n    ]\n";
    out += "  }\n}\n";
    return out;
}

bool
writeReport(const std::string &path, const std::string &name)
{
    return writeStringFile(path, reportJson(name));
}

void
exportMetricsTo(MetricsRegistry &metrics)
{
    {
        auto &r = recorder();
        std::lock_guard<std::mutex> lock(r.mutex);
        if (!r.everStarted)
            return;
    }
    const Analysis a = analyze();
    metrics.addCounter("sched.tasks", a.tasks.size());
    metrics.addCounter("sched.edges", a.edgeCount);
    metrics.addCounter("sched.cache_hits", a.cacheHits);
    std::map<std::string, std::uint64_t> by_kind;
    for (const auto &t : a.tasks)
        ++by_kind[t.decl.kind];
    for (const auto &[kind, count] : by_kind)
        metrics.addCounter("sched.tasks." + kind, count);
}

} // namespace tepic::support::sched
