/**
 * @file
 * Low-overhead structured tracing emitting Chrome trace-event JSON
 * (open the output in Perfetto — https://ui.perfetto.dev — or
 * chrome://tracing).
 *
 * Design:
 *
 *  - Scoped spans (RAII): `TEPIC_TRACE_SPAN("engine.compile")` records
 *    one complete ("X") event with the span's wall-clock duration.
 *  - Per-thread buffers: each thread appends to its own vector under a
 *    thread-local, uncontended mutex; buffers are gathered and written
 *    only at stop(). A thread that exits first parks its events in a
 *    retired list, so pool workers joined before stop() still appear.
 *  - Runtime disable: when tracing is off (the default), every entry
 *    point is a single relaxed atomic load — no allocation, no lock,
 *    no clock read. Span names/categories must be string literals (or
 *    otherwise outlive stop()); they are not copied.
 *  - Compile-time disable: build with TEPIC_TRACING_ENABLED=0 (CMake
 *    -DTEPIC_ENABLE_TRACING=OFF) and the whole layer folds to empty
 *    inline stubs.
 *
 * Determinism caveat: trace *timestamps and durations* vary run to
 * run; the event structure (which spans exist, their nesting and
 * names) is deterministic for a deterministic program.
 */

#ifndef TEPIC_SUPPORT_TRACE_HH
#define TEPIC_SUPPORT_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#ifndef TEPIC_TRACING_ENABLED
#define TEPIC_TRACING_ENABLED 1
#endif

namespace tepic::support::trace {

#if TEPIC_TRACING_ENABLED

/** Runtime switch; one relaxed atomic load. */
bool enabled();

/**
 * Reset all buffers and enable collection. @p path is where stop()
 * writes the JSON; empty means "collect only" (use stopToJson()).
 */
void start(const std::string &path);

/**
 * Disable collection, flush every thread buffer, and write the JSON
 * file given to start() (if any). No-op when never started.
 */
void stop();

/** Like stop(), but return the JSON instead of writing a file. */
std::string stopToJson();

/** Record an instant ("i") event. */
void instant(const char *name, const char *cat = "tepic");

/** Record a counter ("C") event. */
void counter(const char *name, double value, const char *cat = "tepic");

/** RAII scoped span; records one complete event at destruction. */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "tepic");

    /** @p args must be a preformatted JSON object ("{...}"). */
    Span(const char *name, const char *cat, std::string args);

    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    std::string args_;
    std::uint64_t startNs_ = 0;
    bool active_ = false;
};

// Test hooks.

/** Whether the calling thread has materialized a trace buffer. */
bool threadHasBuffer();

/** Total buffered (unflushed) events across all threads. */
std::size_t pendingEvents();

#else // !TEPIC_TRACING_ENABLED — everything folds away.

inline bool enabled() { return false; }
inline void start(const std::string &) {}
inline void stop() {}
inline std::string stopToJson() { return "{\"traceEvents\":[]}"; }
inline void instant(const char *, const char * = "tepic") {}
inline void counter(const char *, double, const char * = "tepic") {}

class Span
{
  public:
    explicit Span(const char *, const char * = "tepic") {}
    Span(const char *, const char *, std::string) {}
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
};

inline bool threadHasBuffer() { return false; }
inline std::size_t pendingEvents() { return 0; }

#endif // TEPIC_TRACING_ENABLED

} // namespace tepic::support::trace

#define TEPIC_TRACE_CONCAT2(a, b) a##b
#define TEPIC_TRACE_CONCAT(a, b) TEPIC_TRACE_CONCAT2(a, b)

/** Scoped span with an unpollutable variable name. */
#define TEPIC_TRACE_SPAN(...)                                            \
    ::tepic::support::trace::Span TEPIC_TRACE_CONCAT(                    \
        tepic_trace_span_, __COUNTER__)(__VA_ARGS__)

#endif // TEPIC_SUPPORT_TRACE_HH
