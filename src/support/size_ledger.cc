#include "support/size_ledger.hh"

#include <algorithm>
#include <vector>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace tepic::support {

void
SizeLedger::addBits(std::string_view path, std::uint64_t bits)
{
    if (bits == 0)
        return;
    TEPIC_ASSERT(!path.empty() && path.front() != '/' &&
                     path.back() != '/' &&
                     path.find("//") == std::string_view::npos,
                 "bad size-ledger path '", path, "'");

    // A path may not be both a leaf and an interior node: that would
    // make the treemap ambiguous (is the parent's number a leaf or
    // the sum of its children?).
    auto it = leaves_.lower_bound(path);
    if (it != leaves_.end() && it->first != path) {
        TEPIC_ASSERT(it->first.size() <= path.size() ||
                         it->first.compare(0, path.size(), path) != 0 ||
                         it->first[path.size()] != '/',
                     "size-ledger leaf '", path,
                     "' conflicts with deeper leaf '", it->first, "'");
    }
    const std::size_t slash = path.rfind('/');
    if (slash != std::string_view::npos) {
        for (std::size_t pos = path.find('/');
             pos != std::string_view::npos;
             pos = path.find('/', pos + 1)) {
            TEPIC_ASSERT(leaves_.find(path.substr(0, pos)) ==
                             leaves_.end(),
                         "size-ledger leaf '", path,
                         "' conflicts with shallower leaf '",
                         path.substr(0, pos), "'");
        }
    }
    leaves_[std::string(path)] += bits;
}

void
SizeLedger::merge(const SizeLedger &other)
{
    for (const auto &[path, bits] : other.leaves_)
        addBits(path, bits);
}

std::uint64_t
SizeLedger::totalBits() const
{
    std::uint64_t total = 0;
    for (const auto &[path, bits] : leaves_)
        total += bits;
    return total;
}

std::uint64_t
SizeLedger::leafBits(std::string_view path) const
{
    auto it = leaves_.find(path);
    return it == leaves_.end() ? 0 : it->second;
}

void
SizeLedger::assertTiles(std::uint64_t expected_bits,
                        std::string_view what) const
{
    TEPIC_ASSERT(totalBits() == expected_bits, "size ledger for ",
                 what, " does not tile: leaves sum to ", totalBits(),
                 " bits, artifact is ", expected_bits, " bits");
}

void
SizeLedger::exportTo(MetricsRegistry &out,
                     std::string_view prefix) const
{
    for (const auto &[path, bits] : leaves_) {
        TEPIC_ASSERT(path != "total_bits",
                     "size-ledger leaf 'total_bits' is reserved");
        std::string name(prefix);
        name += '.';
        name += path;
        for (auto &c : name)
            if (c == '/')
                c = '.';
        out.addCounter(name, bits);
    }
    std::string total(prefix);
    total += ".total_bits";
    out.addCounter(total, totalBits());
}

namespace {

struct FlatLeaf
{
    std::vector<std::string_view> segments;
    std::uint64_t bits;
};

void
renderRange(std::string &out, const std::vector<FlatLeaf> &leaves,
            std::size_t begin, std::size_t end, std::size_t depth,
            unsigned indent)
{
    const std::string pad(indent + 2 * (depth + 1), ' ');
    out += "{";
    bool first = true;
    std::size_t i = begin;
    while (i < end) {
        const std::string_view segment = leaves[i].segments[depth];
        std::size_t j = i;
        while (j < end && leaves[j].segments[depth] == segment)
            ++j;
        out += first ? "\n" : ",\n";
        first = false;
        out += pad;
        out += jsonQuote(segment);
        out += ": ";
        if (j == i + 1 && leaves[i].segments.size() == depth + 1) {
            out += std::to_string(leaves[i].bits);
        } else {
            renderRange(out, leaves, i, j, depth + 1, indent);
        }
        i = j;
    }
    if (first) {
        out += "}";
    } else {
        out += "\n";
        out += std::string(indent + 2 * depth, ' ');
        out += "}";
    }
}

} // namespace

std::string
SizeLedger::toJson(unsigned indent) const
{
    std::vector<FlatLeaf> flat;
    flat.reserve(leaves_.size());
    for (const auto &[path, bits] : leaves_) {
        FlatLeaf leaf;
        leaf.bits = bits;
        std::string_view rest = path;
        for (std::size_t pos = rest.find('/');
             pos != std::string_view::npos; pos = rest.find('/')) {
            leaf.segments.push_back(rest.substr(0, pos));
            rest = rest.substr(pos + 1);
        }
        leaf.segments.push_back(rest);
        flat.push_back(std::move(leaf));
    }
    // Sort segment-wise (not by the raw path string) so every subtree
    // is one contiguous range regardless of how '/' collates against
    // the segment characters.
    std::sort(flat.begin(), flat.end(),
              [](const FlatLeaf &a, const FlatLeaf &b) {
                  return a.segments < b.segments;
              });
    std::string out;
    renderRange(out, flat, 0, flat.size(), 0, indent);
    return out;
}

} // namespace tepic::support
