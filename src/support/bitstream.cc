#include "support/bitstream.hh"

#include "support/logging.hh"

namespace tepic::support {

void
BitWriter::writeBits(std::uint64_t value, unsigned width)
{
    TEPIC_ASSERT(width <= 64, "bit field too wide: ", width);
    if (width < 64)
        TEPIC_ASSERT((value >> width) == 0,
                     "value ", value, " does not fit in ", width, " bits");

    for (unsigned i = width; i-- > 0;) {
        const bool bit = (value >> i) & 1;
        const std::size_t byte_idx = bitSize_ / 8;
        const unsigned bit_idx = 7 - (bitSize_ % 8);
        if (byte_idx == bytes_.size())
            bytes_.push_back(0);
        if (bit)
            bytes_[byte_idx] |= std::uint8_t(1u << bit_idx);
        ++bitSize_;
    }
}

void
BitWriter::alignToByte()
{
    while (bitSize_ % 8 != 0)
        writeBit(false);
}

std::vector<std::uint8_t>
BitWriter::takeBytes()
{
    bitSize_ = 0;
    return std::move(bytes_);
}

std::uint64_t
BitReader::readBits(unsigned width)
{
    TEPIC_ASSERT(width <= 64, "bit field too wide: ", width);
    TEPIC_ASSERT(pos_ + width <= bitSize_,
                 "bitstream overrun: pos=", pos_, " width=", width,
                 " size=", bitSize_);

    std::uint64_t value = 0;
    for (unsigned i = 0; i < width; ++i) {
        const std::size_t byte_idx = pos_ / 8;
        const unsigned bit_idx = 7 - (pos_ % 8);
        value = (value << 1) | ((data_[byte_idx] >> bit_idx) & 1);
        ++pos_;
    }
    return value;
}

void
BitReader::seek(std::size_t bit_pos)
{
    TEPIC_ASSERT(bit_pos <= bitSize_, "seek past end: ", bit_pos);
    pos_ = bit_pos;
}

} // namespace tepic::support
