#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace tepic::support {

namespace {

/**
 * Render "prefix + msg + '\n'" into one buffer and hand it to stderr
 * in a single write, so concurrent messages stay line-atomic.
 */
void
writeLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 1);
    line += prefix;
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

/** CLI override; -1 = unset (fall back to $TEPIC_LOG). */
std::atomic<int> log_override{-1};

} // namespace

LogLevel
parseLogLevel(const char *name)
{
    if (!name)
        return LogLevel::kInfo;
    if (std::strcmp(name, "debug") == 0)
        return LogLevel::kDebug;
    if (std::strcmp(name, "info") == 0)
        return LogLevel::kInfo;
    if (std::strcmp(name, "warn") == 0)
        return LogLevel::kWarn;
    if (std::strcmp(name, "error") == 0)
        return LogLevel::kError;
    if (std::strcmp(name, "none") == 0 ||
        std::strcmp(name, "quiet") == 0) {
        return LogLevel::kNone;
    }
    return LogLevel::kInfo;
}

bool
isLogLevelName(const char *name)
{
    if (!name)
        return false;
    for (const char *known :
         {"debug", "info", "warn", "error", "none", "quiet"}) {
        if (std::strcmp(name, known) == 0)
            return true;
    }
    return false;
}

LogLevel
logThreshold()
{
    const int override_level =
        log_override.load(std::memory_order_relaxed);
    if (override_level >= 0)
        return LogLevel(override_level);
    static const LogLevel threshold =
        parseLogLevel(std::getenv("TEPIC_LOG"));
    return threshold;
}

void
setLogThreshold(LogLevel level)
{
    log_override.store(int(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return int(level) >= int(logThreshold());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Always printed, regardless of TEPIC_LOG.
    writeLine("panic: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    // Throwing (rather than abort()) lets tests exercise failure paths;
    // uncaught it still terminates the process with a diagnostic.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine("fatal: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (logEnabled(LogLevel::kWarn))
        writeLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    if (logEnabled(LogLevel::kInfo))
        writeLine("info: ", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logEnabled(LogLevel::kDebug))
        writeLine("debug: ", msg);
}

} // namespace tepic::support
