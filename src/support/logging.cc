#include "support/logging.hh"

#include <cstdio>
#include <stdexcept>

namespace tepic::support {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort()) lets tests exercise failure paths;
    // uncaught it still terminates the process with a diagnostic.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace tepic::support
