/**
 * @file
 * Shared shape/geometry re-keying for session stores and sweep keys.
 *
 * Several observability layers key records apart when two runs of the
 * same (workload, scheme) pair used different structural shapes — the
 * cache store re-keys geometry sweeps as "<workload>@<sets>x<ways>x
 * <lineBytes>", the hot store re-keys "<workload>@B<blocks>xE<epochs>",
 * and the design-space sweep builds whole configuration keys from the
 * same vocabulary. shapeSuffix() is the one spelling of that format:
 * "@" then the dimensions joined by "x", each dimension an optional
 * tag letter followed by its decimal value. Key stability is a tested
 * contract (tests/test_support.cc) because the suffixes appear in
 * committed report baselines and in trend logs.
 */

#ifndef TEPIC_SUPPORT_KEYS_HH
#define TEPIC_SUPPORT_KEYS_HH

#include <cstdint>
#include <initializer_list>
#include <string>

namespace tepic::support {

/** One dimension of a shape key: optional tag letter(s) + value. */
struct ShapeDim
{
    const char *tag;  ///< "" for untagged dimensions
    std::uint64_t value;
};

/**
 * Render "@<tag0><v0>x<tag1><v1>..." — the canonical re-keying
 * suffix appended to a workload label when records of mismatching
 * shape must not merge.
 */
inline std::string
shapeSuffix(std::initializer_list<ShapeDim> dims)
{
    std::string out = "@";
    bool first = true;
    for (const auto &dim : dims) {
        if (!first)
            out += "x";
        first = false;
        out += dim.tag;
        out += std::to_string(dim.value);
    }
    return out;
}

} // namespace tepic::support

#endif // TEPIC_SUPPORT_KEYS_HH
