/**
 * @file
 * Task-graph scheduling observability for the artifact engine.
 *
 * The engine declares every unit of scheduled work as a *task* —
 * compile+emulate stages, per-scheme image builds, ATT and decoder
 * pre-warm tasks, and cache hits (zero-duration records) — each with
 * its dependency edges, and wraps execution in a TaskScope so the
 * recorder sees enqueue/start/finish timestamps and the worker that
 * ran it (the ThreadPool tags its workers via workerAttach()). From
 * that event stream analyze() reconstructs the build DAG and answers
 * "why didn't --jobs=8 run 8x faster?":
 *
 *  - critical path: the duration-weighted longest dependency chain —
 *    the floor on wall-clock time no worker count can beat;
 *  - achievable vs achieved speedup: total work / critical path vs
 *    total work / makespan;
 *  - a time-bucketed concurrency profile (how many tasks ran at once
 *    across the build window);
 *  - per-worker idle attribution, split by cause: pool ramp (the
 *    worker did not exist yet), dependency stall (undone tasks
 *    existed but none was running-eligible — blocked by dep edges or
 *    by the engine's phase barriers), queue empty (every declared
 *    task was finished or already running).
 *
 * Determinism contract, split exactly like the prof.* namespace:
 * the DAG *structure* (task ids, labels, kinds, dependency edges,
 * cache-hit flags — everything under the report's "structure" key and
 * the sched.* metrics counters) is identical for any --jobs value;
 * everything under "timing" (timestamps, workers, speedups, the
 * concurrency profile) is wall-clock data and only ever band-gated.
 * Task ids are assigned in declaration order on the calling thread,
 * so they are stable run to run.
 *
 * Recording is session-scoped like prof: until startSession() every
 * entry point is one relaxed atomic load. The layer is compiled
 * unconditionally (it has no tracing dependency), so SCHED reports
 * exist in -DTEPIC_ENABLE_TRACING=OFF builds too.
 */

#ifndef TEPIC_SUPPORT_SCHED_HH
#define TEPIC_SUPPORT_SCHED_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tepic::support {

class MetricsRegistry;

namespace sched {

/** Worker id of a task that never ran (cache hit). */
inline constexpr std::uint32_t kNoWorker = 0xffffffffu;

/** Pseudo worker id for the calling (main) thread. */
inline constexpr std::uint32_t kMainWorker = 0xfffffffeu;

/** What a caller declares about one schedulable unit of work. */
struct TaskDecl
{
    std::string label;     ///< display name, "<workload>/<detail>"
    std::string kind;      ///< "compile", artifactKindName(), "hit"
    std::string workload;  ///< batch label (BuildRequest::label)
    std::string scheme;    ///< scheme detail ("s0".."s5", ...) or ""
    std::vector<std::uint64_t> deps;  ///< ids of prerequisite tasks
    bool cacheHit = false;            ///< satisfied without running
};

/** One task's full record: declaration + observed timeline. */
struct TaskRecord
{
    std::uint64_t id = 0;
    TaskDecl decl;
    std::uint64_t enqueueNs = 0;  ///< declaration time (since epoch)
    std::uint64_t startNs = 0;    ///< 0 when never ran
    std::uint64_t finishNs = 0;   ///< 0 when never ran
    std::uint32_t worker = kNoWorker;
    bool ran = false;

    std::uint64_t
    durationNs() const
    {
        return ran ? finishNs - startNs : 0;
    }
};

/** One worker's summarized timeline within the build window. */
struct WorkerSummary
{
    std::uint32_t worker = kNoWorker;  ///< kMainWorker for "main"
    std::string name;                  ///< "main" or "w<N>"
    std::uint64_t startNs = 0;   ///< attach, clamped to the window
    std::uint64_t endNs = 0;     ///< detach or window end
    std::uint64_t busyNs = 0;    ///< sum of task durations
    std::uint64_t rampNs = 0;    ///< window start -> attach
    std::uint64_t queueEmptyNs = 0;
    std::uint64_t depStallNs = 0;
    std::uint64_t tasksRun = 0;
    // Invariant (asserted in analyze() and re-checked by
    // tools/tepic_critpath.py): rampNs + busyNs + queueEmptyNs +
    // depStallNs == endNs - window start.
};

/** Everything analyze() derives from the event stream. */
struct Analysis
{
    unsigned jobs = 0;           ///< startSession() argument
    std::vector<TaskRecord> tasks;  ///< by id (dense)
    std::uint64_t edgeCount = 0;
    std::uint64_t cacheHits = 0;
    bool acyclic = true;

    std::uint64_t windowStartNs = 0;  ///< min enqueue over ran tasks
    std::uint64_t windowEndNs = 0;    ///< max finish over ran tasks
    std::uint64_t makespanNs = 0;     ///< windowEnd - windowStart
    std::uint64_t totalWorkNs = 0;    ///< sum of task durations
    std::uint64_t criticalPathNs = 0;
    std::vector<std::uint64_t> criticalPath;  ///< task ids, root first

    double achievedSpeedup = 0.0;    ///< totalWork / makespan
    double achievableSpeedup = 0.0;  ///< totalWork / criticalPath

    std::uint64_t bucketNs = 0;        ///< concurrency bucket width
    std::vector<double> concurrency;   ///< mean running tasks/bucket

    std::vector<WorkerSummary> workers;
};

/** Runtime switch; one relaxed atomic load. */
bool enabled();

/**
 * Reset the recorder, mark the epoch, and enable collection. @p jobs
 * is the engine parallelism the session was asked for (0 = hardware
 * concurrency), recorded verbatim into the report.
 */
void startSession(unsigned jobs);

/** Disable collection; recorded events stay until the next start. */
void endSession();

/**
 * Declare one task (assigning the next id in declaration order) and
 * stamp its enqueue time. Returns the id, or ~0 when disabled.
 * Dependency ids must come from earlier declareTask() calls, which
 * makes the recorded graph acyclic by construction.
 */
std::uint64_t declareTask(TaskDecl decl);

/** Mark @p id running on the calling thread's worker (TLS). */
void taskStarted(std::uint64_t id);

/** Mark @p id finished. */
void taskFinished(std::uint64_t id);

/** RAII taskStarted()/taskFinished() pair around a task body. */
class TaskScope
{
  public:
    explicit
    TaskScope(std::uint64_t id)
        : id_(id)
    {
        if (id_ != ~std::uint64_t(0))
            taskStarted(id_);
    }

    ~TaskScope()
    {
        if (id_ != ~std::uint64_t(0))
            taskFinished(id_);
    }

    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

  private:
    std::uint64_t id_;
};

/**
 * ThreadPool hook: tag the calling thread as pool worker @p worker
 * (ids 0..N-1) and record its spawn time. The id outlives sessions
 * (it is thread-local); the attach event is recorded only while a
 * session is active.
 */
void workerAttach(std::uint32_t worker);

/** ThreadPool hook: record the worker's exit and clear the tag. */
void workerDetach();

/** The calling thread's worker id (kMainWorker outside a pool). */
std::uint32_t currentWorker();

/** Reconstruct DAG + timelines from the current session's events. */
Analysis analyze();

/**
 * Render schema "tepic-sched-v1" for the current session: a
 * "structure" object (exact-gated across --jobs) and a "timing"
 * object (band-gated wall-clock data). @p name labels the report.
 */
std::string reportJson(const std::string &name);

/** reportJson() to a file; warns (returns false) on I/O failure. */
bool writeReport(const std::string &path, const std::string &name);

/**
 * Deterministic sched.* counters into @p metrics: sched.tasks,
 * sched.edges, sched.cache_hits and per-kind sched.tasks.<kind> —
 * all exact-gated, identical for any --jobs. No-op when no session
 * was ever started (so binaries that never record stay key-stable).
 */
void exportMetricsTo(MetricsRegistry &metrics);

// Test hooks.

/** Drop all recorded state and disable (tests only). */
void resetForTest();

} // namespace sched

} // namespace tepic::support

#endif // TEPIC_SUPPORT_SCHED_HH
