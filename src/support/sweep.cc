#include "support/sweep.hh"

#include <algorithm>

#include "support/logging.hh"

namespace tepic::support::sweep {

const char *
senseName(Sense sense)
{
    return sense == Sense::kMax ? "max" : "min";
}

bool
dominates(const Point &a, const Point &b,
          const std::vector<Objective> &objectives)
{
    TEPIC_ASSERT(a.values.size() == objectives.size()
                     && b.values.size() == objectives.size(),
                 "point arity must match the objective list");
    bool strictlyBetter = false;
    for (std::size_t i = 0; i < objectives.size(); ++i) {
        const std::int64_t va = oriented(a.values[i], objectives[i].sense);
        const std::int64_t vb = oriented(b.values[i], objectives[i].sense);
        if (va > vb)
            return false;
        if (va < vb)
            strictlyBetter = true;
    }
    return strictlyBetter;
}

std::vector<std::size_t>
paretoFront(const std::vector<Point> &points,
            const std::vector<Objective> &objectives)
{
    // Sort indices into dominance order first: oriented tuple
    // ascending, key as the stable tie-break. Dominance-order output
    // falls out for free, and the classic cull below stays O(n * f)
    // because a sorted point can only be dominated by an earlier one.
    std::vector<std::size_t> order(points.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto orientedLess = [&](std::size_t lhs, std::size_t rhs) {
        const Point &a = points[lhs];
        const Point &b = points[rhs];
        for (std::size_t i = 0; i < objectives.size(); ++i) {
            const std::int64_t va =
                oriented(a.values[i], objectives[i].sense);
            const std::int64_t vb =
                oriented(b.values[i], objectives[i].sense);
            if (va != vb)
                return va < vb;
        }
        return a.key < b.key;
    };
    std::sort(order.begin(), order.end(), orientedLess);

    std::vector<std::size_t> front;
    for (std::size_t idx : order) {
        bool dominated = false;
        for (std::size_t keep : front) {
            if (dominates(points[keep], points[idx], objectives)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(idx);
    }
    return front;
}

std::vector<std::vector<std::size_t>>
expandGrid(const std::vector<std::size_t> &dimSizes)
{
    std::size_t total = 1;
    for (std::size_t size : dimSizes) {
        if (size == 0)
            return {};
        total *= size;
    }
    std::vector<std::vector<std::size_t>> tuples;
    tuples.reserve(total);
    std::vector<std::size_t> tuple(dimSizes.size(), 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
        tuples.push_back(tuple);
        for (std::size_t d = dimSizes.size(); d-- > 0;) {
            if (++tuple[d] < dimSizes[d])
                break;
            tuple[d] = 0;
        }
    }
    return tuples;
}

} // namespace tepic::support::sweep
