/**
 * @file
 * Lightweight statistics accumulators used by the simulators.
 */

#ifndef TEPIC_SUPPORT_STATS_HH
#define TEPIC_SUPPORT_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tepic::support {

/** Running scalar statistic: count, sum, min, max, mean. */
class ScalarStat
{
  public:
    void
    sample(double value)
    {
        if (count_ == 0) {
            min_ = max_ = value;
        } else {
            min_ = std::min(min_, value);
            max_ = std::max(max_, value);
        }
        sum_ += value;
        ++count_;
    }

    /**
     * Fold @p other into this accumulator. Parallel code keeps one
     * ScalarStat per task and merges in a fixed order on the calling
     * thread — deterministic, and no locking on the sample path.
     */
    void
    merge(const ScalarStat &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        sum_ += other.sum_;
        count_ += other.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Integer-keyed histogram. */
class Histogram
{
  public:
    void sample(std::int64_t key, std::uint64_t weight = 1)
    {
        bins_[key] += weight;
        total_ += weight;
    }

    /** Fold @p other in (same ordered-reduction discipline as ScalarStat). */
    void
    merge(const Histogram &other)
    {
        for (const auto &[k, w] : other.bins_)
            bins_[k] += w;
        total_ += other.total_;
    }

    std::uint64_t total() const { return total_; }
    const std::map<std::int64_t, std::uint64_t> &bins() const
    {
        return bins_;
    }

    /** Weighted mean of the keys. */
    double
    mean() const
    {
        if (total_ == 0)
            return 0.0;
        double acc = 0.0;
        for (const auto &[k, w] : bins_)
            acc += double(k) * double(w);
        return acc / double(total_);
    }

  private:
    std::map<std::int64_t, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/** Median of a sample vector (used for the paper's "median advantage"). */
double median(std::vector<double> values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Geometric mean (all values must be positive). */
double geomean(const std::vector<double> &values);

} // namespace tepic::support

#endif // TEPIC_SUPPORT_STATS_HH
