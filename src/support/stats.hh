/**
 * @file
 * Lightweight statistics accumulators used by the simulators.
 */

#ifndef TEPIC_SUPPORT_STATS_HH
#define TEPIC_SUPPORT_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tepic::support {

/** Running scalar statistic: count, sum, min, max, mean. */
class ScalarStat
{
  public:
    void
    sample(double value)
    {
        if (count_ == 0) {
            min_ = max_ = value;
        } else {
            min_ = std::min(min_, value);
            max_ = std::max(max_, value);
        }
        sum_ += value;
        ++count_;
    }

    /**
     * Fold @p other into this accumulator. Parallel code keeps one
     * ScalarStat per task and merges in a fixed order on the calling
     * thread — deterministic, and no locking on the sample path.
     */
    void
    merge(const ScalarStat &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        sum_ += other.sum_;
        count_ += other.count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Integer-keyed histogram, optionally bounded: with an overflow
 * threshold T, samples with key >= T land in a single overflow bucket
 * instead of growing the bin map without limit (hot simulators sample
 * per block — a pathological stall tail must not allocate per key).
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Bounded histogram: keys >= @p overflowThreshold overflow. */
    explicit Histogram(std::int64_t overflowThreshold)
        : threshold_(overflowThreshold), bounded_(true)
    {
    }

    void sample(std::int64_t key, std::uint64_t weight = 1)
    {
        if (bounded_ && key >= threshold_)
            overflow_ += weight;
        else
            bins_[key] += weight;
        total_ += weight;
    }

    /**
     * Fold @p other in (same ordered-reduction discipline as
     * ScalarStat). Mixed bounds take the *tighter* (minimum)
     * threshold and re-clamp, which keeps merge associative: any
     * grouping of the same operands yields the same bins, overflow
     * and threshold. Self-merge doubles every bucket, as if merging
     * an identical copy.
     */
    void merge(const Histogram &other);

    std::uint64_t total() const { return total_; }

    /** Weight that landed at or above the overflow threshold. */
    std::uint64_t overflow() const { return overflow_; }

    bool bounded() const { return bounded_; }

    /** Meaningful only when bounded(). */
    std::int64_t overflowThreshold() const { return threshold_; }

    const std::map<std::int64_t, std::uint64_t> &bins() const
    {
        return bins_;
    }

    /** Weighted mean of the keys; overflow counts at the threshold. */
    double
    mean() const
    {
        if (total_ == 0)
            return 0.0;
        double acc = double(threshold_) * double(overflow_);
        for (const auto &[k, w] : bins_)
            acc += double(k) * double(w);
        return acc / double(total_);
    }

  private:
    /** Move bins at/above the current threshold into overflow. */
    void clampToThreshold();

    std::map<std::int64_t, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
    std::uint64_t overflow_ = 0;
    std::int64_t threshold_ = 0;
    bool bounded_ = false;
};

/** Median of a sample vector (used for the paper's "median advantage"). */
double median(std::vector<double> values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** Geometric mean (all values must be positive). */
double geomean(const std::vector<double> &values);

} // namespace tepic::support

#endif // TEPIC_SUPPORT_STATS_HH
