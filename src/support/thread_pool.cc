#include "support/thread_pool.hh"

#include <exception>

#include "support/logging.hh"
#include "support/profiler.hh"
#include "support/sched.hh"
#include "support/trace.hh"

namespace tepic::support {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    available_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TEPIC_ASSERT(!stopping_,
                     "submit() on a ThreadPool being destroyed");
        queue_.push_back(
            Job{std::move(job), std::chrono::steady_clock::now()});
    }
    available_.notify_one();
}

namespace {

/** Tags the worker thread for the sched recorder, detaching on exit. */
struct SchedWorkerTag
{
    explicit SchedWorkerTag(unsigned index)
    {
        sched::workerAttach(index);
    }
    ~SchedWorkerTag() { sched::workerDetach(); }
};

} // namespace

void
ThreadPool::workerLoop(unsigned index)
{
    const SchedWorkerTag sched_tag(index);
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            // Drain-on-shutdown: queued work still runs after the
            // stop flag is raised; workers only exit on empty.
            if (queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        const auto picked_up = std::chrono::steady_clock::now();
        queueWaitNanos_.fetch_add(
            std::uint64_t(std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              picked_up - job.enqueued)
                              .count()),
            std::memory_order_relaxed);
        {
            TEPIC_TRACE_SPAN("pool.task", "pool");
            // Worker-side charge: jobs re-scope themselves (e.g. the
            // engine's kBuild* phases), so only the residue between
            // pickup and the job's own scopes lands in kWorker.
            prof::ProfScope prof_scope(prof::Phase::kWorker);
            job.fn();  // packaged_task captures any exception
        }
        execNanos_.fetch_add(
            std::uint64_t(std::chrono::duration_cast<
                              std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() -
                              picked_up)
                              .count()),
            std::memory_order_relaxed);
        tasksExecuted_.fetch_add(1, std::memory_order_relaxed);
    }
}

PoolStats
ThreadPool::stats() const
{
    PoolStats stats;
    stats.tasksExecuted =
        tasksExecuted_.load(std::memory_order_relaxed);
    stats.queueWaitNanos =
        queueWaitNanos_.load(std::memory_order_relaxed);
    stats.execNanos = execNanos_.load(std::memory_order_relaxed);
    return stats;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (count == 1 || threadCount() <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(submit([&body, i] { body(i); }));
    std::exception_ptr first_error;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace tepic::support
