/**
 * @file
 * Fixed-size thread pool for the artifact engine (and anything else
 * that wants coarse task parallelism).
 *
 * Deliberately simple — no work stealing, one shared FIFO queue — so
 * scheduling order is easy to reason about and the pool is safe to
 * use from tasks themselves (submit() only touches the queue lock).
 * Two invariants the engine relies on:
 *
 *  - submit() is safe from any thread, including worker threads
 *    (tasks may enqueue follow-up tasks);
 *  - destruction *drains* the queue: every task submitted before the
 *    destructor runs is executed, then workers join.
 *
 * Blocking on another task's future from inside a task can deadlock a
 * fixed pool and is not supported; structure work as phases instead
 * (the engine fans out independent tasks and joins from the caller).
 */

#ifndef TEPIC_SUPPORT_THREAD_POOL_HH
#define TEPIC_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tepic::support {

/**
 * Aggregate scheduling statistics for one pool: how many tasks ran,
 * how long they sat queued before a worker picked them up, and how
 * long they executed. Durations are wall-clock and therefore
 * environment-dependent; exported under the metrics "runtime"
 * section, never compared across runs.
 */
struct PoolStats
{
    std::uint64_t tasksExecuted = 0;
    std::uint64_t queueWaitNanos = 0;
    std::uint64_t execNanos = 0;
};

class ThreadPool
{
  public:
    /** Spawn @p threads workers; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Runs every already-submitted task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const { return unsigned(workers_.size()); }

    /**
     * Enqueue @p fn; the future carries its result or exception.
     * Callable from worker threads.
     */
    template <typename F>
    auto
    submit(F fn) -> std::future<std::invoke_result_t<F &>>
    {
        using Result = std::invoke_result_t<F &>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run body(0) .. body(count-1) across the pool and wait for all
     * of them. Must be called from outside the pool (a worker calling
     * this could deadlock waiting for its own slot). If any iteration
     * throws, the first exception (by index) is rethrown after every
     * iteration has finished.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** std::thread::hardware_concurrency(), never zero. */
    static unsigned hardwareThreads();

    /** Snapshot of the scheduling counters (relaxed reads). */
    PoolStats stats() const;

  private:
    struct Job
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueued;
    };

    void enqueue(std::function<void()> job);
    void workerLoop(unsigned index);

    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::deque<Job> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;

    // Scheduling counters; never feed back into task results.
    std::atomic<std::uint64_t> tasksExecuted_{0};
    std::atomic<std::uint64_t> queueWaitNanos_{0};
    std::atomic<std::uint64_t> execNanos_{0};
};

} // namespace tepic::support

#endif // TEPIC_SUPPORT_THREAD_POOL_HH
