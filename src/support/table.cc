#include "support/table.hh"

#include <cstdio>
#include <sstream>

#include "support/logging.hh"

namespace tepic::support {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    TEPIC_ASSERT(row.size() == header_.size(),
                 "row has ", row.size(), " cells, header has ",
                 header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " ");
            os << row[c]
               << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
    }
    os << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
TextTable::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TextTable::percent(double ratio, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
    return buf;
}

} // namespace tepic::support
