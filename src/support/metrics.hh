/**
 * @file
 * Process-wide metrics registry with a stable JSON export schema.
 *
 * Five named sections, split by their determinism contract:
 *
 *   counters    uint64 sums           deterministic across --jobs
 *   gauges      doubles (last write)  deterministic across --jobs
 *   histograms  support::Histogram    deterministic across --jobs
 *   timings     support::ScalarStat   wall-clock; values vary run to
 *                                     run (the *key set* is stable)
 *   runtime     uint64 sums           environment-dependent (thread
 *                                     pool task counts, queue waits)
 *
 * The first three sections are bit-identical for any engine --jobs
 * value (the same guarantee as the artifact engine's outputs); the
 * comparison tool (tools/validate_metrics.py --compare) checks exactly
 * those. Registries merge per-name in the caller's order — the same
 * ordered-reduction discipline as ScalarStat/Histogram — so parallel
 * code can keep one registry per task and fold deterministically.
 *
 * All recording methods are thread-safe (one internal mutex); hot
 * loops should accumulate locally and record once at the end.
 */

#ifndef TEPIC_SUPPORT_METRICS_HH
#define TEPIC_SUPPORT_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/stats.hh"

namespace tepic::support {

/** JSON string literal (quotes + escapes) for @p text. */
std::string jsonQuote(std::string_view text);

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    // --- deterministic sections ---------------------------------------

    void addCounter(std::string_view name, std::uint64_t delta = 1);
    void setGauge(std::string_view name, double value);
    void sampleHistogram(std::string_view name, std::int64_t key,
                         std::uint64_t weight = 1);
    /** Fold a locally-built (possibly bounded) histogram in. */
    void mergeHistogram(std::string_view name, const Histogram &hist);

    // --- wall-clock / environment sections ----------------------------

    void recordTimingMs(std::string_view name, double ms);
    void addRuntime(std::string_view name, std::uint64_t delta);

    // --- aggregation ---------------------------------------------------

    /** Fold @p other in, per name. Not safe with other == this. */
    void merge(const MetricsRegistry &other);

    void clear();
    bool empty() const;

    // --- reads (absent names return zero-values) -----------------------

    std::uint64_t counter(std::string_view name) const;
    double gauge(std::string_view name) const;
    Histogram histogram(std::string_view name) const;
    ScalarStat timing(std::string_view name) const;
    std::uint64_t runtime(std::string_view name) const;

    std::vector<std::string> counterNames() const;
    std::vector<std::string> gaugeNames() const;
    bool hasCounterWithPrefix(std::string_view prefix) const;
    std::vector<std::pair<std::string, ScalarStat>> timingsSnapshot()
        const;

    // --- export --------------------------------------------------------

    /** Render the whole registry as schema "tepic-metrics-v1". */
    std::string toJson() const;

    /** toJson() to a file; warns (and returns false) on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

    /** The process-wide registry. */
    static MetricsRegistry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    std::map<std::string, ScalarStat, std::less<>> timings_;
    std::map<std::string, std::uint64_t, std::less<>> runtime_;
};

/** Samples elapsed milliseconds into a timing at destruction. */
class ScopedTimerMs
{
  public:
    ScopedTimerMs(MetricsRegistry &registry, const char *name)
        : registry_(registry), name_(name),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimerMs()
    {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        registry_.recordTimingMs(
            name_,
            std::chrono::duration<double, std::milli>(elapsed)
                .count());
    }

    ScopedTimerMs(const ScopedTimerMs &) = delete;
    ScopedTimerMs &operator=(const ScopedTimerMs &) = delete;

  private:
    MetricsRegistry &registry_;
    const char *name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace tepic::support

#endif // TEPIC_SUPPORT_METRICS_HH
