/**
 * @file
 * Generic design-space sweep machinery: grid expansion and Pareto
 * dominance over integer objective vectors.
 *
 * The sweep driver (core/sweep.hh) evaluates a configuration grid and
 * wants two pure, deterministic primitives out of it:
 *
 *  - expandGrid(): enumerate every index tuple of an N-dimensional
 *    grid in row-major order (last dimension fastest), so point order
 *    is a function of the grid alone and never of evaluation order;
 *  - paretoFront(): the non-dominated subset of a point set under a
 *    per-objective min/max sense, returned in *dominance order* —
 *    sorted by the objective tuple with each axis oriented so better
 *    comes first, keys as the final tie-break.
 *
 * Everything here is integer-only on purpose. The sweep's exact-gated
 * "structure" report section must be byte-identical across --jobs
 * values and across machines; integer objectives (sizes in bits,
 * IPC scaled by 1e6, transistor counts, bit flips) make every
 * dominance comparison exact, with no floating-point rounding to
 * drift between platforms. Determinism contracts:
 *
 *  - paretoFront() is a pure function of the point *set*: shuffling
 *    the input order permutes nothing in the output keys (tested);
 *  - duplicate objective vectors do not dominate each other, so equal
 *    points all stay on the front (dominance requires strict
 *    improvement in at least one objective).
 */

#ifndef TEPIC_SUPPORT_SWEEP_HH
#define TEPIC_SUPPORT_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tepic::support::sweep {

/** Direction of improvement for one objective. */
enum class Sense : std::uint8_t {
    kMin,  ///< smaller is better (size, transistors, flips)
    kMax,  ///< larger is better (IPC)
};

const char *senseName(Sense sense);

/** One axis of the objective space. */
struct Objective
{
    std::string name;
    Sense sense = Sense::kMin;
};

/** One candidate point: a stable key + one value per objective. */
struct Point
{
    std::string key;
    std::vector<std::int64_t> values;
};

/**
 * True iff @p a dominates @p b: no worse on every objective and
 * strictly better on at least one. Checked: both points must have
 * exactly one value per objective.
 */
bool dominates(const Point &a, const Point &b,
               const std::vector<Objective> &objectives);

/**
 * Orient @p value so that smaller always means better; dominance
 * order sorts by the oriented tuple ascending.
 */
inline std::int64_t
oriented(std::int64_t value, Sense sense)
{
    return sense == Sense::kMax ? -value : value;
}

/**
 * Indices (into @p points) of the non-dominated points, in dominance
 * order: ascending by oriented objective tuple, then by key. The
 * result is invariant under permutations of @p points up to the index
 * mapping — the *keys* in front order are a pure function of the
 * point set.
 */
std::vector<std::size_t>
paretoFront(const std::vector<Point> &points,
            const std::vector<Objective> &objectives);

/**
 * All index tuples of a grid with the given per-dimension sizes, in
 * row-major order (last dimension varies fastest). An empty dimension
 * yields an empty grid; no dimensions yield the single empty tuple.
 */
std::vector<std::vector<std::size_t>>
expandGrid(const std::vector<std::size_t> &dimSizes);

} // namespace tepic::support::sweep

#endif // TEPIC_SUPPORT_SWEEP_HH
