/**
 * @file
 * Host-performance profiling: where does the *simulator's own* CPU
 * time go, in hardware-counter terms?
 *
 * Two instruments, both scoped to a fixed phase taxonomy:
 *
 *  - Phase counters: `ProfScope scope(Phase::kFetchSim)` attributes
 *    the host cycles / instructions / cache-misses / branch-misses /
 *    CPU-ns spent inside the scope to that phase. Attribution is
 *    *self-time*: a scope nested inside another (on the same thread)
 *    subtracts its inclusive cost from its parent, so the per-phase
 *    charges tile the total with no double counting — the same
 *    invariant discipline as SizeLedger leaves tiling an artifact's
 *    bits. Counters come from perf_event_open when the kernel allows
 *    it; the fallback ladder is
 *
 *        perf_event (cycles/instr/cache-miss/branch-miss + cpu-ns)
 *          -> CLOCK_THREAD_CPUTIME_ID (cpu-ns only; "cycles" is then
 *             defined as cpu-ns so the tiling invariant still holds)
 *
 *    The mode is decided once per process (first probe) and reported
 *    as the "source" field of the PROF report, so CI containers with
 *    perf_event_paranoid locked down degrade loudly, not wrongly.
 *
 *  - Sampling profiler: SIGPROF (ITIMER_PROF, i.e. process CPU time)
 *    samples the running thread's call stack into a fixed ring;
 *    collapsedStacks() folds them into FlameGraph "collapsed" text
 *    (root;child;leaf count), rendered by tools/tepic_profile.py.
 *
 * The phase set is a closed enum so every report carries the *same
 * key set* regardless of --jobs or which phases actually ran —
 * zero-valued phases are emitted, making PROF_<name>.json key-set
 * deterministic (a tested guarantee; only the counter *values* are
 * wall-clock data).
 *
 * Determinism contract with support::MetricsRegistry:
 *
 *   prof.work.*   counters — deterministic work counts (ops encoded,
 *                 blocks simulated), exact-gated like any counter
 *   prof.*        gauges — derived throughput (work / phase CPU-s),
 *                 key-set stable but value-varying; the comparison
 *                 tools treat the prof. gauge namespace like timings
 *   prof.*        runtime — raw per-phase counter values (env data)
 *
 * Compile-time disable: profiling follows the tracing switch
 * (-DTEPIC_ENABLE_TRACING=OFF) unless TEPIC_PROFILING_ENABLED is set
 * explicitly; disabled, ProfScope is an empty type and every entry
 * point folds to an inline no-op.
 */

#ifndef TEPIC_SUPPORT_PROFILER_HH
#define TEPIC_SUPPORT_PROFILER_HH

#include <cstdint>
#include <string>

#include "support/trace.hh"

#ifndef TEPIC_PROFILING_ENABLED
#define TEPIC_PROFILING_ENABLED TEPIC_TRACING_ENABLED
#endif

namespace tepic::support {

class MetricsRegistry;

namespace prof {

/**
 * The closed phase taxonomy. Every phase a ProfScope can charge —
 * reports always emit all of them (zero or not) so the key set never
 * depends on --jobs, cache hits, or which commands ran.
 */
enum class Phase : unsigned
{
    kFrontend,       ///< lex + parse + IR generation
    kOptimise,       ///< IR optimisation + weight estimation
    kBackend,        ///< lower, regalloc, emit, layout, schedule
    kEmulate,        ///< emulator runs (profile pass + final)
    kBuildBase,      ///< baseline image encode
    kBuildByte,      ///< Huffman byte-stream encode
    kBuildStream,    ///< six-stream encodes
    kBuildFull,      ///< Huffman full-stream encode
    kBuildTailored,  ///< tailored ISA build + encode
    kBuildAtt,       ///< ATT construction
    kFetchSim,       ///< cycle-accurate fetch simulation
    kWorker,         ///< thread-pool dispatch overhead (self time)
    kBenchKernel,    ///< microbench sentinel kernels
    kReport,         ///< metrics / report serialization
    kOther,          ///< session time outside any scope (main thread)
};

inline constexpr unsigned kNumPhases = 15;

/** Stable lowercase name ("frontend", "fetch_sim", ...). */
const char *phaseName(Phase phase);

/** One phase's (or the total's) accumulated hardware counters. */
struct PhaseCounters
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;
    std::uint64_t cpuNs = 0;
    std::uint64_t enters = 0;
};

/** Aggregated view of every phase across every thread. */
struct Snapshot
{
    bool perfEvents = false;  ///< true: real HW counters; false: cpu-ns
    PhaseCounters phases[kNumPhases];
    PhaseCounters total;  ///< == Σ phases, asserted (tiling invariant)
    std::uint64_t samplesTaken = 0;
    std::uint64_t samplesDropped = 0;
};

#if TEPIC_PROFILING_ENABLED

/** Compiled in? (Runtime phase accounting is always on when so.) */
inline bool available() { return true; }

/**
 * Reset all accumulators and mark the session start on the calling
 * thread; Phase::kOther charges this thread's CPU time spent outside
 * any scope between here and snapshot().
 */
void startSession();

/** Fold every thread's charges (relaxed reads; tiling re-asserted). */
Snapshot snapshot();

/**
 * Raw per-phase values into the registry's *runtime* section
 * ("prof.<phase>.<counter>") plus derived throughput gauges
 * ("prof.ops_encoded_per_sec", "prof.blocks_simulated_per_sec",
 * "prof.fetch.<scheme>.blocks_per_sec", "prof.ipc_host") computed
 * from the registry's deterministic prof.work.* counters. Gauges are
 * emitted only when their work counter is non-zero, so a binary's
 * gauge key set is stable run to run.
 */
void exportMetricsTo(MetricsRegistry &metrics);

/**
 * Render schema "tepic-prof-v1": source, total, all phases (tiling
 * total exactly), the registry's prof.work.* counters, the derived
 * prof.* throughput gauges, and sampling stats.
 */
std::string reportJson(const std::string &name,
                       const MetricsRegistry &metrics);

/** reportJson() to a file; warns (returns false) on I/O failure. */
bool writeReport(const std::string &path, const std::string &name,
                 const MetricsRegistry &metrics);

/**
 * CLOCK_THREAD_CPUTIME_ID now, for callers that attribute their own
 * cpu-time deltas (e.g. per-scheme fetch runtime in core::runFetch).
 */
std::uint64_t threadCpuNowNs();

// --- sampling --------------------------------------------------------

/**
 * Install the SIGPROF handler and start the CPU-time sample timer at
 * @p hz (clamped to [1, 10000]). Returns false if a sampler is
 * already running or the timer cannot be installed.
 */
bool startSampling(unsigned hz = 997);

/** Stop the timer; samples stay buffered for collapsedStacks(). */
void stopSampling();

/**
 * Fold buffered samples into FlameGraph collapsed-stack text, one
 * "frame;frame;...;frame count" line per unique stack (root first).
 * Symbolization uses dladdr; frames without symbols render as hex.
 */
std::string collapsedStacks();

/** collapsedStacks() to a file; warns (returns false) on failure. */
bool writeCollapsed(const std::string &path);

/** Scoped phase attribution (self-time; see file comment). */
class ProfScope
{
  public:
    explicit ProfScope(Phase phase);
    ~ProfScope();

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    bool active_ = false;
};

// Test hooks.

/** Drop every thread's charges and the session mark (tests only). */
void resetForTest();

#else // !TEPIC_PROFILING_ENABLED — everything folds away.

inline bool available() { return false; }
inline void startSession() {}
inline std::uint64_t threadCpuNowNs() { return 0; }
inline Snapshot snapshot() { return {}; }
inline void exportMetricsTo(MetricsRegistry &) {}
inline bool startSampling(unsigned = 997) { return false; }
inline void stopSampling() {}
inline std::string collapsedStacks() { return {}; }
inline bool writeCollapsed(const std::string &) { return false; }
inline void resetForTest() {}

// Out of line even when disabled: a stub PROF report (all-zero
// phases, source "disabled") keeps --prof-report= callers working in
// -DTEPIC_ENABLE_TRACING=OFF builds.
std::string reportJson(const std::string &name,
                       const MetricsRegistry &metrics);
bool writeReport(const std::string &path, const std::string &name,
                 const MetricsRegistry &metrics);

class ProfScope
{
  public:
    explicit ProfScope(Phase) {}
    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;
};

#endif // TEPIC_PROFILING_ENABLED

} // namespace prof

} // namespace tepic::support

#endif // TEPIC_SUPPORT_PROFILER_HH
