/**
 * @file
 * Decoder factories and shape descriptions for every scheme.
 *
 * codec/decoder.hh defines the interface; this header is where
 * consumers obtain concrete decoders without including (or caring
 * about) per-scheme internals. makeDecoder(SchemeClass, ...) is the
 * fetch-side entry point: given the artifacts of one of the three
 * study organisations it returns the matching decoder. The per-image
 * overloads cover the remaining alphabets (byte, stream, dictionary)
 * for round-trip verification and the decode microbenchmarks.
 */

#ifndef TEPIC_CODEC_CODEC_HH
#define TEPIC_CODEC_CODEC_HH

#include <memory>

#include "codec/decoder.hh"
#include "fetch/cycle_model.hh"
#include "schemes/dictionary.hh"
#include "schemes/huffman_scheme.hh"
#include "schemes/tailored.hh"

namespace tepic::codec {

/** Decoder over the baseline 40-bit image. */
std::unique_ptr<Decoder> makeBaseDecoder(const isa::Image &image);

/** Decoder over a Huffman image (byte, stream or full alphabet). */
std::unique_ptr<Decoder>
makeDecoder(const schemes::CompressedImage &compressed);

/** Decoder over a tailored image (needs the PLA programming too). */
std::unique_ptr<Decoder>
makeDecoder(const schemes::TailoredIsa &isa, const isa::Image &image);

/** Decoder over a dictionary image. */
std::unique_ptr<Decoder>
makeDecoder(const schemes::DictionaryImage &compressed);

/**
 * Everything the three fetch organisations can decode from. Fill in
 * the members the scheme class needs; makeDecoder checks at runtime:
 *  - kBase needs baseImage;
 *  - kCompressed needs compressedImage (the full-op alphabet in the
 *    study, but any alphabet works);
 *  - kTailored needs tailoredIsa + tailoredImage.
 */
struct DecoderSources
{
    const isa::Image *baseImage = nullptr;
    const schemes::CompressedImage *compressedImage = nullptr;
    const schemes::TailoredIsa *tailoredIsa = nullptr;
    const isa::Image *tailoredImage = nullptr;
};

/** Dispatch on the fetch organisation. Fatal if a source is missing. */
std::unique_ptr<Decoder>
makeDecoder(fetch::SchemeClass scheme, const DecoderSources &sources);

/**
 * The dictionary shape behind a Huffman image — the (n, k, m) of the
 * §3.5 decoder cost model, aggregated over the image's tables. This
 * is the decode-side metadata reports need without touching the
 * tables themselves.
 */
struct DictionaryShape
{
    std::size_t tables = 0;       ///< number of code tables
    unsigned maxCodeLength = 0;   ///< max n over tables
    std::size_t entries = 0;      ///< total k over tables
    unsigned maxSymbolBits = 0;   ///< max m over tables
};

DictionaryShape describeShape(const schemes::CompressedImage &compressed);

/**
 * Decode-microbenchmark kernels (bench/microbench.cc): run the
 * production LUT decoder / the reference canonical walk over @p count
 * symbols of a stream produced by the matching encoder, folding the
 * symbols into a checksum. The two must agree bit-exactly — the
 * micro.huffman.decode_checksum sentinel counter is built on this.
 */
std::uint64_t decodeChecksum(const huffman::CodeTable &table,
                             support::BitReader &reader,
                             std::size_t count);
std::uint64_t decodeChecksumReference(const huffman::CodeTable &table,
                                      support::BitReader &reader,
                                      std::size_t count);

} // namespace tepic::codec

#endif // TEPIC_CODEC_CODEC_HH
