/**
 * @file
 * The unified decode interface and the decoded-block cache.
 *
 * Every encoding scheme in the study (baseline 40-bit, the Huffman
 * alphabets, the tailored ISA, the dictionary scheme) decodes a block
 * of an encoded isa::Image back into its Operation vector. Before
 * this interface existed each consumer reached into per-scheme decode
 * internals (CodeTable::decode, ad-hoc tailored/dictionary readers);
 * codec::Decoder is the one seam they all go through now. Concrete
 * implementations live next to their encoders in src/schemes/ (and
 * src/codec/codec.cc for the baseline); see codec/codec.hh for the
 * factories.
 *
 * This header is deliberately header-only and depends on nothing
 * above src/isa, so the fetch simulator can hold a DecodedBlockCache
 * pointer without a link-time dependency on the scheme libraries.
 *
 * DecodedBlockCache is the host-side decode accelerator of the
 * "raw speed" roadmap era: static code means a block's decoded form
 * never changes during a simulation, so each block is decoded once on
 * first touch and replayed from the cache for the other ~10^5
 * dynamic executions. The cache is keyed by construction: one cache
 * wraps one Decoder, which fingerprints (scheme, image content), and
 * block ids index it directly. It cannot perturb architectural
 * metrics — cycle accounting, L0/ATB state and bus bit-flips are
 * computed from the image metadata and trace, never from the decoded
 * operations (DESIGN.md §10).
 */

#ifndef TEPIC_CODEC_DECODER_HH
#define TEPIC_CODEC_DECODER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/image.hh"
#include "isa/operation.hh"
#include "isa/program.hh"
#include "support/logging.hh"

namespace tepic::codec {

/** FNV-1a over an image's identity: scheme name + packed bytes. */
inline std::uint64_t
imageFingerprint(const isa::Image &image)
{
    std::uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](std::uint8_t byte) {
        hash ^= byte;
        hash *= 1099511628211ull;
    };
    for (char c : image.scheme)
        mix(std::uint8_t(c));
    for (std::size_t shift = 0; shift < 64; shift += 8)
        mix(std::uint8_t(image.bitSize >> shift));
    for (std::uint8_t byte : image.bytes)
        mix(byte);
    return hash;
}

/**
 * Decodes blocks of one encoded image. Implementations are immutable
 * views over the image (plus whatever tables the scheme needs) and
 * are safe to share across threads for const use.
 */
class Decoder
{
  public:
    virtual ~Decoder() = default;

    /** Scheme label of the decoded image (e.g. "base", "huff-full"). */
    virtual const char *name() const = 0;

    /** Number of static blocks in the image. */
    virtual std::size_t blockCount() const = 0;

    /**
     * Identity of (scheme, image content) — the cache key part that
     * is not the block id. Two decoders over bit-identical images of
     * the same scheme agree; any content change disagrees.
     */
    virtual std::uint64_t fingerprint() const = 0;

    /** Decode block @p id into @p out (cleared first). */
    virtual void decodeBlockInto(isa::BlockId id,
                                 std::vector<isa::Operation> &out)
        const = 0;

    /** Convenience: decode one block into a fresh vector. */
    std::vector<isa::Operation>
    decodeBlock(isa::BlockId id) const
    {
        std::vector<isa::Operation> ops;
        decodeBlockInto(id, ops);
        return ops;
    }

    /** Convenience: decode the whole image, one vector per block. */
    std::vector<std::vector<isa::Operation>>
    decodeAll() const
    {
        std::vector<std::vector<isa::Operation>> blocks;
        blocks.resize(blockCount());
        for (std::size_t id = 0; id < blocks.size(); ++id)
            decodeBlockInto(isa::BlockId(id), blocks[id]);
        return blocks;
    }
};

/**
 * Decode-once-replay-forever cache over one Decoder.
 *
 * ops(id) decodes the block on first touch and returns a reference
 * that stays valid for the cache's lifetime (storage is sized at
 * construction; entries are never evicted — static code is small).
 * Hit/miss/ops-decoded counters are deterministic given the access
 * sequence and are exported as the codec.* metrics.
 */
class DecodedBlockCache
{
  public:
    explicit DecodedBlockCache(const Decoder &decoder)
        : decoder_(&decoder), fingerprint_(decoder.fingerprint()),
          blocks_(decoder.blockCount()),
          decoded_(decoder.blockCount(), 0)
    {
    }

    /** Decoded operations of @p id; decodes on the first touch. */
    const std::vector<isa::Operation> &
    ops(isa::BlockId id)
    {
        TEPIC_ASSERT(id < blocks_.size(),
                     "block id out of range: ", id);
        if (decoded_[id]) {
            ++hits_;
            return blocks_[id];
        }
        ++misses_;
        decoder_->decodeBlockInto(id, blocks_[id]);
        opsDecoded_ += blocks_[id].size();
        decoded_[id] = 1;
        return blocks_[id];
    }

    /** The decoder this cache replays (identity == cache key). */
    const Decoder &decoder() const { return *decoder_; }

    /** Cached copy of decoder().fingerprint(). */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Accesses served from already-decoded blocks. */
    std::uint64_t hits() const { return hits_; }

    /** First-touch accesses that ran the scheme decoder. */
    std::uint64_t misses() const { return misses_; }

    /** Operations decoded across all first touches. */
    std::uint64_t opsDecoded() const { return opsDecoded_; }

    /** Static block capacity (== decoder().blockCount()). */
    std::size_t size() const { return blocks_.size(); }

  private:
    const Decoder *decoder_;
    std::uint64_t fingerprint_;
    std::vector<std::vector<isa::Operation>> blocks_;
    std::vector<std::uint8_t> decoded_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t opsDecoded_ = 0;
};

} // namespace tepic::codec

#endif // TEPIC_CODEC_DECODER_HH
