#include "codec/codec.hh"

#include <algorithm>

#include "isa/baseline.hh"
#include "support/logging.hh"

namespace tepic::codec {

namespace {

/** codec::Decoder over the baseline 40-bit image. */
class BaselineBlockDecoder final : public Decoder
{
  public:
    explicit BaselineBlockDecoder(const isa::Image &image)
        : image_(&image), fingerprint_(imageFingerprint(image))
    {
    }

    const char *name() const override { return "base"; }

    std::size_t blockCount() const override
    {
        return image_->blocks.size();
    }

    std::uint64_t fingerprint() const override { return fingerprint_; }

    void
    decodeBlockInto(isa::BlockId id,
                    std::vector<isa::Operation> &ops) const override
    {
        const isa::BlockLayout &layout = image_->blocks.at(id);
        TEPIC_ASSERT(layout.bitSize % isa::kOpBits == 0,
                     "baseline block size not a multiple of 40 bits");
        support::BitReader reader(image_->bytes.data(),
                                  image_->bitSize);
        reader.seek(layout.bitOffset);
        ops.clear();
        ops.reserve(layout.numOps);
        for (std::uint32_t i = 0; i < layout.numOps; ++i)
            ops.push_back(isa::Operation::decode(
                reader.readBits(isa::kOpBits)));
    }

  private:
    const isa::Image *image_;
    std::uint64_t fingerprint_;
};

} // namespace

std::unique_ptr<Decoder>
makeBaseDecoder(const isa::Image &image)
{
    return std::make_unique<BaselineBlockDecoder>(image);
}

std::unique_ptr<Decoder>
makeDecoder(const schemes::CompressedImage &compressed)
{
    return schemes::makeBlockDecoder(compressed);
}

std::unique_ptr<Decoder>
makeDecoder(const schemes::TailoredIsa &isa, const isa::Image &image)
{
    return schemes::makeBlockDecoder(isa, image);
}

std::unique_ptr<Decoder>
makeDecoder(const schemes::DictionaryImage &compressed)
{
    return schemes::makeBlockDecoder(compressed);
}

std::unique_ptr<Decoder>
makeDecoder(fetch::SchemeClass scheme, const DecoderSources &sources)
{
    switch (scheme) {
      case fetch::SchemeClass::kBase:
        TEPIC_ASSERT(sources.baseImage != nullptr,
                     "makeDecoder(kBase) needs a base image");
        return makeBaseDecoder(*sources.baseImage);
      case fetch::SchemeClass::kCompressed:
        TEPIC_ASSERT(sources.compressedImage != nullptr,
                     "makeDecoder(kCompressed) needs a compressed "
                     "image");
        return makeDecoder(*sources.compressedImage);
      case fetch::SchemeClass::kTailored:
        TEPIC_ASSERT(sources.tailoredIsa != nullptr &&
                         sources.tailoredImage != nullptr,
                     "makeDecoder(kTailored) needs the tailored ISA "
                     "and image");
        return makeDecoder(*sources.tailoredIsa,
                           *sources.tailoredImage);
    }
    TEPIC_PANIC("unknown scheme class");
}

DictionaryShape
describeShape(const schemes::CompressedImage &compressed)
{
    DictionaryShape shape;
    shape.tables = compressed.tables.size();
    for (std::size_t t = 0; t < compressed.tables.size(); ++t) {
        shape.maxCodeLength = std::max(
            shape.maxCodeLength, compressed.tables[t].maxCodeLength());
        shape.entries += compressed.tables[t].size();
        shape.maxSymbolBits =
            std::max(shape.maxSymbolBits, compressed.symbolBits[t]);
    }
    return shape;
}

std::uint64_t
decodeChecksum(const huffman::CodeTable &table,
               support::BitReader &reader, std::size_t count)
{
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < count; ++i)
        checksum ^= table.decode(reader) + i;
    return checksum;
}

std::uint64_t
decodeChecksumReference(const huffman::CodeTable &table,
                        support::BitReader &reader, std::size_t count)
{
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < count; ++i)
        checksum ^= table.decodeReference(reader) + i;
    return checksum;
}

} // namespace tepic::codec
