/**
 * @file
 * Figure 14 reproduction: "Memory Bus Bit flips Summary" — the power
 * proxy of §5: transitions on the memory bus during instruction-miss
 * (and ATT) traffic, per scheme. Paper reference shape: the results
 * track the degree of compression; Tailored and Compressed both save
 * over Base because each flip delivers more instructions.
 */

#include "common.hh"

namespace {

using namespace tepic;
using fetch::SchemeClass;
using support::TextTable;

void
printFigure14()
{
    std::printf("=== Figure 14: memory bus bit flips ===\n\n");

    TextTable table;
    table.setHeader({"workload", "Base Mflips", "Compressed Mflips",
                     "Tailored Mflips", "comp/base", "tail/base",
                     "flips/1k ops (base)"});

    std::vector<double> comp_rel;
    std::vector<double> tail_rel;
    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const auto base = core::runFetch(a, SchemeClass::kBase,
                                         std::nullopt, named.name);
        const auto comp = core::runFetch(
            a, SchemeClass::kCompressed, std::nullopt, named.name);
        const auto tail = core::runFetch(
            a, SchemeClass::kTailored, std::nullopt, named.name);

        const double mb = double(base.busBitFlips) / 1e6;
        const double mc = double(comp.busBitFlips) / 1e6;
        const double mt = double(tail.busBitFlips) / 1e6;
        const double rc = base.busBitFlips
            ? double(comp.busBitFlips) / double(base.busBitFlips)
            : 1.0;
        const double rt = base.busBitFlips
            ? double(tail.busBitFlips) / double(base.busBitFlips)
            : 1.0;
        comp_rel.push_back(rc);
        tail_rel.push_back(rt);
        table.addRow({named.name, TextTable::num(mb, 3),
                      TextTable::num(mc, 3), TextTable::num(mt, 3),
                      TextTable::percent(rc),
                      TextTable::percent(rt),
                      TextTable::num(double(base.busBitFlips) * 1000 /
                                     double(base.opsDelivered), 1)});
    }
    table.addRow({"average", "", "", "",
                  TextTable::percent(support::mean(comp_rel)),
                  TextTable::percent(support::mean(tail_rel)), ""});
    std::printf("%s\n", table.render().c_str());

    // Headline gauges: suite-average flips relative to Base.
    auto &metrics = support::MetricsRegistry::global();
    metrics.setGauge("fig14.flip_ratio.compressed",
                     support::mean(comp_rel));
    metrics.setGauge("fig14.flip_ratio.tailored",
                     support::mean(tail_rel));
    std::printf("(paper: savings track the degree of compression — "
                "each scheme brings in more instructions per flip)\n");
}

void
BM_BusTransfer(benchmark::State &state)
{
    const auto &bytes =
        bench::allArtifacts().front().artifacts().fullImage().image.bytes;
    for (auto _ : state) {
        power::BusModel bus(8);
        bus.transfer(bytes);
        benchmark::DoNotOptimize(bus.bitFlips());
    }
    state.SetBytesProcessed(std::int64_t(state.iterations()) *
                            std::int64_t(bytes.size()));
}
BENCHMARK(BM_BusTransfer);

} // namespace

TEPIC_BENCH_MAIN(printFigure14,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kBase,
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kTailored,
                     tepic::core::ArtifactKind::kTrace,
                     tepic::core::ArtifactKind::kDecoder}))
