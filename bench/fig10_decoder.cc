/**
 * @file
 * Figure 10 reproduction: "Huffman Decoder Complexity" — the paper's
 * worst-case transistor-count model
 *
 *     T = 2m(2^n − 1) + 4m(2^n − 2^(n−1) − 1) + 2n
 *
 * evaluated over every scheme's dictionaries, next to the tailored
 * ISA's PLA cost. Paper reference shape: Full largest, byte smallest
 * among Huffman (limited input width and dictionary), tailored far
 * below all of them — this is what makes Tailored attractive despite
 * its weaker compression (§5 discussion).
 */

#include "common.hh"

#include "codec/codec.hh"
#include "decoder/complexity.hh"

namespace {

using namespace tepic;
using support::TextTable;

void
printFigure10()
{
    std::printf("=== Figure 10: decoder complexity "
                "(transistor-count model of Section 3.5) ===\n\n");

    TextTable table;
    table.setHeader({"workload", "byte kT", "stream kT",
                     "stream_1 kT", "full kT", "tailored kT"});

    std::vector<double> byte_t;
    std::vector<double> stream_t;
    std::vector<double> stream1_t;
    std::vector<double> full_t;
    std::vector<double> tail_t;
    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const auto kT = [](std::uint64_t t) {
            return double(t) / 1000.0;
        };
        const double byte =
            kT(decoder::decoderTransistors(a.byteImage()));
        const double stream = kT(decoder::decoderTransistors(
            a.streamImage(a.bestStreamByDecoder())));
        const double stream1 = kT(decoder::decoderTransistors(
            a.streamImage(a.bestStreamBySize())));
        const double full =
            kT(decoder::decoderTransistors(a.fullImage()));
        const double tailored =
            kT(decoder::tailoredDecoderTransistors(a.tailoredIsa()));
        byte_t.push_back(byte);
        stream_t.push_back(stream);
        stream1_t.push_back(stream1);
        full_t.push_back(full);
        tail_t.push_back(tailored);
        table.addRow({named.name, TextTable::num(byte, 0),
                      TextTable::num(stream, 0),
                      TextTable::num(stream1, 0),
                      TextTable::num(full, 0),
                      TextTable::num(tailored, 1)});
    }
    table.addRow({"average", TextTable::num(support::mean(byte_t), 0),
                  TextTable::num(support::mean(stream_t), 0),
                  TextTable::num(support::mean(stream1_t), 0),
                  TextTable::num(support::mean(full_t), 0),
                  TextTable::num(support::mean(tail_t), 1)});
    std::printf("%s\n", table.render().c_str());

    // Headline gauges (suite-average kilotransistors) for the report.
    auto &metrics = support::MetricsRegistry::global();
    metrics.setGauge("fig10.decoder_kt.byte", support::mean(byte_t));
    metrics.setGauge("fig10.decoder_kt.stream",
                     support::mean(stream_t));
    metrics.setGauge("fig10.decoder_kt.stream_1",
                     support::mean(stream1_t));
    metrics.setGauge("fig10.decoder_kt.full", support::mean(full_t));
    metrics.setGauge("fig10.decoder_kt.tailored",
                     support::mean(tail_t));

    // Dictionary shapes behind the model, for the largest workload.
    const auto *gcc_named = bench::findArtifacts("gcc");
    if (gcc_named == nullptr) {
        std::printf("(gcc not in --workloads subset; skipping the "
                    "dictionary-shape table)\n");
        return;
    }
    const auto &gcc = gcc_named->artifacts();
    TextTable dict;
    dict.setHeader({"scheme (gcc)", "tables", "max n", "entries k",
                    "m bits"});
    auto row = [&](const std::string &name,
                   const schemes::CompressedImage &img) {
        const codec::DictionaryShape shape = codec::describeShape(img);
        dict.addRow({name, std::to_string(shape.tables),
                     std::to_string(shape.maxCodeLength),
                     std::to_string(shape.entries),
                     std::to_string(shape.maxSymbolBits)});
    };
    row("byte", gcc.byteImage());
    row("stream_1", gcc.streamImage(gcc.bestStreamBySize()));
    row("full", gcc.fullImage());
    std::printf("%s\n", dict.render().c_str());
    std::printf("(reference hardware, Section 3.5: 114-entry decoder "
                "with 1-16 bit codes = 10k-28k transistors)\n");
}

void
BM_DecoderCostModel(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            decoder::decoderTransistors(a.fullImage()));
    }
}
BENCHMARK(BM_DecoderCostModel);

void
BM_VerilogEmission(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        auto text = a.tailoredIsa().emitVerilog("decoder");
        benchmark::DoNotOptimize(text.size());
    }
}
BENCHMARK(BM_VerilogEmission)->Unit(benchmark::kMicrosecond);

} // namespace

TEPIC_BENCH_MAIN(printFigure10,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kByte,
                     tepic::core::ArtifactKind::kStream,
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kTailored}))
