/**
 * @file
 * Ablation: L0 decompression-buffer capacity (§4 sets it to 32 op
 * entries / 160 bytes and claims tight DSP loops fit completely).
 * Sweeps the capacity and reports compressed-scheme IPC and L0 hit
 * rate per workload — showing where the paper's choice sits on the
 * curve, and that the DSP kernels saturate right at small sizes while
 * dispatcher-heavy codes never do.
 */

#include "common.hh"

namespace {

using namespace tepic;
using fetch::SchemeClass;
using support::TextTable;

void
printAblation()
{
    std::printf("=== Ablation: L0 buffer capacity "
                "(compressed scheme) ===\n\n");

    const unsigned sizes[] = {8, 16, 32, 64, 128, 256};

    TextTable ipc;
    std::vector<std::string> header{"workload"};
    for (unsigned s : sizes)
        header.push_back("IPC@" + std::to_string(s));
    header.push_back("L0hit@32");
    ipc.setHeader(header);

    for (const auto &named : bench::allArtifacts()) {
        std::vector<std::string> row{named.name};
        double hit32 = 0.0;
        for (unsigned s : sizes) {
            auto config =
                fetch::FetchConfig::paper(SchemeClass::kCompressed);
            config.l0CapacityOps = s;
            const auto stats = core::runFetch(
                named.artifacts(), SchemeClass::kCompressed,
                config, named.name);
            row.push_back(TextTable::num(stats.ipc(), 3));
            if (s == 32) {
                hit32 = stats.l0Hits + stats.l0Misses
                    ? double(stats.l0Hits) /
                          double(stats.l0Hits + stats.l0Misses)
                    : 0.0;
            }
        }
        row.push_back(TextTable::percent(hit32, 1));
        ipc.addRow(row);
    }
    std::printf("%s\n", ipc.render().c_str());
    std::printf("(paper setting: 32 op entries = 160 bytes; DSP "
                "kernels should saturate by 32, dispatcher codes "
                "should stay flat)\n");
}

void
BM_L0Buffer(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    auto config = fetch::FetchConfig::paper(SchemeClass::kCompressed);
    config.l0CapacityOps = unsigned(state.range(0));
    for (auto _ : state) {
        auto stats =
            core::runFetch(a, SchemeClass::kCompressed, config);
        benchmark::DoNotOptimize(stats.cycles);
    }
}
BENCHMARK(BM_L0Buffer)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

} // namespace

TEPIC_BENCH_MAIN(printAblation,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kTrace}))
