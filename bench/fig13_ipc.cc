/**
 * @file
 * Figure 13 reproduction: "Cache Study Summary" — operations
 * delivered per cycle for Ideal / Base / Compressed (full-op Huffman)
 * / Tailored, per workload, under the §5 configuration (16 KB 2-way
 * caches, 20 KB effective for Base; Table-1 cycle model; ATB-coupled
 * 2-bit + last-target prediction).
 *
 * Paper reference shape: Tailored and Compressed both exceed Base on
 * average; Compressed does worse than Base on several benchmarks
 * (compress, go, ijpeg, m88ksim) because of the higher
 * misprediction/miss-repair penalties of the added decoder stage.
 * Also prints the Table-1 assumptions the model runs on.
 */

#include "common.hh"

namespace {

using namespace tepic;
using fetch::SchemeClass;
using support::TextTable;

void
printTable1()
{
    std::printf("--- Table 1 (cycle-count assumptions, as "
                "implemented) ---\n\n");
    TextTable t;
    t.setHeader({"event", "Base", "Tailored",
                 "Compressed L0-miss", "Compressed L0-hit"});
    t.addRow({"pred ok,  L1 hit", "1", "1", "1", "1"});
    t.addRow({"pred ok,  L1 miss", "1+(n-1)", "2+(n-1)", "3+(n-1)",
              "1"});
    t.addRow({"mispred,  L1 hit", "2", "2", "3", "1"});
    t.addRow({"mispred,  L1 miss", "8+(n-1)", "9+(n-1)", "10+(n-1)",
              "1"});
    std::printf("%s(single-MOP blocks; n = memory lines; +1 per "
                "additional MOP)\n\n", t.render().c_str());
}

void
printFigure13()
{
    std::printf("=== Figure 13: cache study summary "
                "(operations delivered per cycle) ===\n\n");
    printTable1();

    // The paper's Figure 13 covers the SPECint95-shaped suite; the
    // DSP kernels appear separately below (they are the Section 4
    // L0-buffer discussion, not part of the cache study).
    TextTable table;
    table.setHeader({"workload", "Ideal", "Base", "Compressed",
                     "Tailored", "base L1 hit%", "comp L1 hit%",
                     "L0 hit%", "pred acc%"});
    TextTable dsp;
    dsp.setHeader({"DSP kernel", "Base", "Compressed", "Tailored",
                   "L0 hit%"});

    std::vector<double> base_v;
    std::vector<double> comp_v;
    std::vector<double> tail_v;
    std::vector<double> ideal_v;
    std::vector<double> comp_rel;
    std::vector<double> tail_rel;

    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const auto base = core::runFetch(a, SchemeClass::kBase,
                                         std::nullopt, named.name);
        const auto comp = core::runFetch(
            a, SchemeClass::kCompressed, std::nullopt, named.name);
        const auto tail = core::runFetch(
            a, SchemeClass::kTailored, std::nullopt, named.name);

        auto &metrics = support::MetricsRegistry::global();
        metrics.setGauge("fetch.ipc." + named.name + ".base",
                         base.ipc());
        metrics.setGauge("fetch.ipc." + named.name + ".compressed",
                         comp.ipc());
        metrics.setGauge("fetch.ipc." + named.name + ".tailored",
                         tail.ipc());

        const double l0_rate = comp.l0Hits + comp.l0Misses
            ? double(comp.l0Hits) /
                  double(comp.l0Hits + comp.l0Misses)
            : 0.0;
        if (named.isDspKernel) {
            dsp.addRow({named.name, TextTable::num(base.ipc(), 3),
                        TextTable::num(comp.ipc(), 3),
                        TextTable::num(tail.ipc(), 3),
                        TextTable::percent(l0_rate, 1)});
            continue;
        }
        base_v.push_back(base.ipc());
        comp_v.push_back(comp.ipc());
        tail_v.push_back(tail.ipc());
        ideal_v.push_back(base.idealIpc());
        comp_rel.push_back(comp.ipc() / base.ipc());
        tail_rel.push_back(tail.ipc() / base.ipc());

        table.addRow({named.name,
                      TextTable::num(base.idealIpc(), 3),
                      TextTable::num(base.ipc(), 3),
                      TextTable::num(comp.ipc(), 3),
                      TextTable::num(tail.ipc(), 3),
                      TextTable::percent(base.l1HitRate(), 2),
                      TextTable::percent(comp.l1HitRate(), 2),
                      TextTable::percent(l0_rate, 1),
                      TextTable::percent(base.predictionAccuracy(),
                                         1)});
    }
    table.addRow({"average", TextTable::num(support::mean(ideal_v), 3),
                  TextTable::num(support::mean(base_v), 3),
                  TextTable::num(support::mean(comp_v), 3),
                  TextTable::num(support::mean(tail_v), 3), "", "", "",
                  ""});
    std::printf("%s\n", table.render().c_str());

    TextTable summary;
    summary.setHeader({"metric", "Compressed vs Base",
                       "Tailored vs Base"});
    summary.addRow({"mean speedup",
                    TextTable::percent(support::mean(comp_rel) - 1.0),
                    TextTable::percent(support::mean(tail_rel) - 1.0)});
    summary.addRow({"median speedup",
                    TextTable::percent(
                        support::median(comp_rel) - 1.0),
                    TextTable::percent(
                        support::median(tail_rel) - 1.0)});
    int comp_losses = 0;
    for (double r : comp_rel)
        if (r < 1.0)
            ++comp_losses;
    summary.addRow({"workloads below Base",
                    std::to_string(comp_losses), ""});
    std::printf("%s\n", summary.render().c_str());

    // Headline gauges for the fidelity report (suite averages over
    // the cache-study workloads, DSP kernels excluded like Fig. 13).
    auto &metrics = support::MetricsRegistry::global();
    metrics.setGauge("fig13.ipc.ideal", support::mean(ideal_v));
    metrics.setGauge("fig13.ipc.base", support::mean(base_v));
    metrics.setGauge("fig13.ipc.compressed", support::mean(comp_v));
    metrics.setGauge("fig13.ipc.tailored", support::mean(tail_v));
    metrics.setGauge("fig13.speedup.compressed_mean",
                     support::mean(comp_rel) - 1.0);
    metrics.setGauge("fig13.speedup.compressed_median",
                     support::median(comp_rel) - 1.0);
    metrics.setGauge("fig13.speedup.tailored_mean",
                     support::mean(tail_rel) - 1.0);
    metrics.setGauge("fig13.speedup.tailored_median",
                     support::median(tail_rel) - 1.0);
    metrics.setGauge("fig13.compressed_losses", double(comp_losses));
    std::printf("(paper: Tailored highest; Compressed median-better "
                "than Base but loses on compress/go/ijpeg/m88ksim)\n\n");

    std::printf("--- Section 4 claim: DSP kernels fit the 32-op L0 "
                "buffer ---\n\n%s\n", dsp.render().c_str());
}

void
BM_FetchSimBase(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        auto stats = core::runFetch(a, SchemeClass::kBase);
        benchmark::DoNotOptimize(stats.cycles);
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations()) *
        std::int64_t(a.execution.trace.events.size()));
}
BENCHMARK(BM_FetchSimBase)->Unit(benchmark::kMillisecond);

void
BM_FetchSimCompressed(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        auto stats = core::runFetch(a, SchemeClass::kCompressed);
        benchmark::DoNotOptimize(stats.cycles);
    }
}
BENCHMARK(BM_FetchSimCompressed)->Unit(benchmark::kMillisecond);

void
BM_Emulate(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    sim::EmulatorConfig config;
    config.recordTrace = false;
    for (auto _ : state) {
        auto result = sim::emulate(a.compiled.program,
                                   a.compiled.data, config);
        benchmark::DoNotOptimize(result.exitValue);
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations()) *
        std::int64_t(a.execution.dynamicOps));
}
BENCHMARK(BM_Emulate)->Unit(benchmark::kMillisecond);

} // namespace

TEPIC_BENCH_MAIN(printFigure13,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kBase,
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kTailored,
                     tepic::core::ArtifactKind::kTrace,
                     tepic::core::ArtifactKind::kDecoder}))
