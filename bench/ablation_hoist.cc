/**
 * @file
 * Ablation: treegion-style speculative hoisting (§2.1/§3.1 — the
 * paper's compiler schedules treegions and relies on the encoding's S
 * bit). Compares static ILP, code size and the three schemes' IPC
 * with speculation on and off, plus a hoist-budget sweep.
 *
 * This harness needs a different PipelineConfig per build, so it
 * drives the ArtifactEngine directly instead of the shared
 * buildAllArtifacts() path: all hoist-on/off builds are batched
 * through one buildMany() call, and the budget sweep hits the engine
 * cache for the configurations the first phase already built.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common.hh"
#include "core/artifact_engine.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using support::TextTable;

// Base + tailored fetch runs; no Huffman images needed at all.
const core::ArtifactRequest kRequest{core::ArtifactKind::kBase,
                                     core::ArtifactKind::kTailored,
                                     core::ArtifactKind::kTrace};

core::ArtifactEngine *engine = nullptr;
std::vector<const workloads::Workload *> selected;

core::PipelineConfig
hoistConfig(bool hoist, unsigned budget = 4)
{
    core::PipelineConfig config;
    config.compile.hoist.enabled = hoist;
    config.compile.hoist.maxOpsPerEdge = budget;
    return config;
}

void
printAblation()
{
    std::printf("=== Ablation: speculative hoisting "
                "(treegion-style code motion) ===\n\n");

    // One batch: {off, on} per workload, built concurrently.
    std::vector<core::BuildRequest> requests;
    for (const auto *w : selected) {
        requests.push_back({w->source, kRequest, hoistConfig(false)});
        requests.push_back({w->source, kRequest, hoistConfig(true)});
    }
    const auto built = engine->buildMany(requests);

    TextTable table;
    table.setHeader({"workload", "hoisted ops", "ILP off", "ILP on",
                     "dyn ops delta", "base IPC off", "base IPC on",
                     "tailored IPC on"});

    std::vector<double> ipc_gain;
    for (std::size_t i = 0; i < selected.size(); ++i) {
        const auto &w = *selected[i];
        const auto &off = *built[2 * i];
        const auto &on = *built[2 * i + 1];
        const auto base_off = core::runFetch(
            off, fetch::SchemeClass::kBase, std::nullopt,
            w.name + "/hoist-off");
        const auto base_on = core::runFetch(
            on, fetch::SchemeClass::kBase, std::nullopt, w.name);
        const auto tail_on = core::runFetch(
            on, fetch::SchemeClass::kTailored, std::nullopt, w.name);
        ipc_gain.push_back(base_on.ipc() / base_off.ipc());

        const double dyn_delta =
            double(on.execution.dynamicOps) /
                double(off.execution.dynamicOps) - 1.0;
        table.addRow({w.name,
                      std::to_string(
                          on.compiled.hoistStats.hoistedOps),
                      TextTable::num(off.compiled.schedStats.ilp(), 3),
                      TextTable::num(on.compiled.schedStats.ilp(), 3),
                      TextTable::percent(dyn_delta),
                      TextTable::num(base_off.ipc(), 3),
                      TextTable::num(base_on.ipc(), 3),
                      TextTable::num(tail_on.ipc(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("mean base-IPC effect of hoisting: %+.1f%%\n\n",
                (support::mean(ipc_gain) - 1.0) * 100.0);

    // Budget sweep on the branchiest workload. budget == 4 repeats a
    // configuration from the batch above: a pure engine cache hit.
    TextTable sweep;
    sweep.setHeader({"max ops/edge", "hoisted", "ILP", "base IPC"});
    const auto &go = workloads::workloadByName("go");
    for (unsigned budget : {0u, 1u, 2u, 4u, 8u}) {
        const auto a = engine->build(
            go.source, kRequest, hoistConfig(budget > 0, budget));
        const auto stats = core::runFetch(
            *a, fetch::SchemeClass::kBase, std::nullopt, "go");
        sweep.addRow({std::to_string(budget),
                      std::to_string(a->compiled.hoistStats.hoistedOps),
                      TextTable::num(a->compiled.schedStats.ilp(), 3),
                      TextTable::num(stats.ipc(), 3)});
    }
    std::printf("%s", sweep.render().c_str());

    const auto stats = engine->stats();
    std::fprintf(stderr,
                 "[bench] engine: %llu compiles, %llu cache hits, "
                 "%llu huffman images (expected 0)\n",
                 (unsigned long long)stats.compiles,
                 (unsigned long long)stats.cacheHits,
                 (unsigned long long)stats.huffmanImages());
}

void
BM_HoistPass(benchmark::State &state)
{
    const auto &source = workloads::workloadByName("gcc").source;
    for (auto _ : state) {
        auto compiled = compiler::compileSource(source);
        benchmark::DoNotOptimize(compiled.hoistStats.hoistedOps);
    }
}
BENCHMARK(BM_HoistPass)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    const auto options =
        tepic::bench::parseBenchOptions(&argc, argv, kRequest);
    core::ArtifactEngine hoist_engine(options.jobs);
    engine = &hoist_engine;
    if (options.workloads.empty()) {
        for (const auto &w : workloads::allWorkloads())
            selected.push_back(&w);
    } else {
        for (const auto &name : options.workloads)
            selected.push_back(&workloads::workloadByName(name));
    }
    printAblation();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    engine = nullptr;
    return 0;
}
