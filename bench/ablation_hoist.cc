/**
 * @file
 * Ablation: treegion-style speculative hoisting (§2.1/§3.1 — the
 * paper's compiler schedules treegions and relies on the encoding's S
 * bit). Compares static ILP, code size and the three schemes' IPC
 * with speculation on and off, plus a hoist-budget sweep.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pipeline.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using support::TextTable;

core::Artifacts
buildWith(const std::string &source, bool hoist, unsigned budget = 4)
{
    core::PipelineConfig config;
    config.compile.hoist.enabled = hoist;
    config.compile.hoist.maxOpsPerEdge = budget;
    config.buildAllStreamConfigs = false;
    return core::buildArtifacts(source, config);
}

void
printAblation()
{
    std::printf("=== Ablation: speculative hoisting "
                "(treegion-style code motion) ===\n\n");

    TextTable table;
    table.setHeader({"workload", "hoisted ops", "ILP off", "ILP on",
                     "dyn ops delta", "base IPC off", "base IPC on",
                     "tailored IPC on"});

    std::vector<double> ipc_gain;
    for (const auto &w : workloads::allWorkloads()) {
        const auto off = buildWith(w.source, false);
        const auto on = buildWith(w.source, true);
        const auto base_off =
            core::runFetch(off, fetch::SchemeClass::kBase);
        const auto base_on =
            core::runFetch(on, fetch::SchemeClass::kBase);
        const auto tail_on =
            core::runFetch(on, fetch::SchemeClass::kTailored);
        ipc_gain.push_back(base_on.ipc() / base_off.ipc());

        const double dyn_delta =
            double(on.execution.dynamicOps) /
                double(off.execution.dynamicOps) - 1.0;
        table.addRow({w.name,
                      std::to_string(
                          on.compiled.hoistStats.hoistedOps),
                      TextTable::num(off.compiled.schedStats.ilp(), 3),
                      TextTable::num(on.compiled.schedStats.ilp(), 3),
                      TextTable::percent(dyn_delta),
                      TextTable::num(base_off.ipc(), 3),
                      TextTable::num(base_on.ipc(), 3),
                      TextTable::num(tail_on.ipc(), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("mean base-IPC effect of hoisting: %+.1f%%\n\n",
                (support::mean(ipc_gain) - 1.0) * 100.0);

    // Budget sweep on the branchiest workload.
    TextTable sweep;
    sweep.setHeader({"max ops/edge", "hoisted", "ILP", "base IPC"});
    const auto &go = workloads::workloadByName("go");
    for (unsigned budget : {0u, 1u, 2u, 4u, 8u}) {
        const auto a = buildWith(go.source, budget > 0, budget);
        const auto stats =
            core::runFetch(a, fetch::SchemeClass::kBase);
        sweep.addRow({std::to_string(budget),
                      std::to_string(a.compiled.hoistStats.hoistedOps),
                      TextTable::num(a.compiled.schedStats.ilp(), 3),
                      TextTable::num(stats.ipc(), 3)});
    }
    std::printf("%s", sweep.render().c_str());
}

void
BM_HoistPass(benchmark::State &state)
{
    const auto &source = workloads::workloadByName("gcc").source;
    for (auto _ : state) {
        auto compiled = compiler::compileSource(source);
        benchmark::DoNotOptimize(compiled.hoistStats.hoistedOps);
    }
}
BENCHMARK(BM_HoistPass)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printAblation();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
