/**
 * @file
 * Ablation: bounded-Huffman maximum code length (§2.2/§3.5). The
 * paper bounds code lengths because "Huffman will produce very long
 * output codes that are incompatible with IFetch hardware"; the bound
 * trades compression (longer codes allowed = closer to entropy)
 * against decoder size (the model's 2^n term). This sweep regenerates
 * that tradeoff for the full-op scheme.
 */

#include "common.hh"

#include "decoder/complexity.hh"

namespace {

using namespace tepic;
using support::TextTable;

void
printAblation()
{
    std::printf("=== Ablation: bounded-Huffman max code length "
                "(full-op scheme) ===\n\n");

    const unsigned bounds[] = {10, 12, 14, 16, 18, 20};

    TextTable table;
    std::vector<std::string> header{"workload"};
    for (unsigned b : bounds)
        header.push_back("sz@" + std::to_string(b));
    for (unsigned b : bounds)
        header.push_back("kT@" + std::to_string(b));
    table.setHeader(header);

    for (const auto &named : bench::allArtifacts()) {
        const auto &program = named.artifacts().compiled.program;
        std::vector<std::string> row{named.name};
        std::vector<std::string> costs;
        for (unsigned b : bounds) {
            // The bound must cover the dictionary.
            schemes::HuffmanOptions opts;
            opts.maxCodeLength = b;
            schemes::CompressedImage img;
            bool ok = true;
            try {
                img = schemes::compressFull(program, opts);
            } catch (const std::exception &) {
                ok = false;  // 2^b < dictionary size
            }
            if (ok) {
                row.push_back(TextTable::percent(
                    named.artifacts().ratio(img.image)));
                costs.push_back(TextTable::num(
                    double(decoder::decoderTransistors(img)) / 1000.0,
                    0));
            } else {
                row.push_back("n/a");
                costs.push_back("n/a");
            }
        }
        for (auto &c : costs)
            row.push_back(std::move(c));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("(the 2^n decoder term grows ~4x per +2 bits; size "
                "gains saturate once the bound clears the entropy "
                "profile)\n");
}

void
BM_PackageMerge(benchmark::State &state)
{
    const auto &program =
        bench::allArtifacts().front().artifacts().compiled.program;
    huffman::SymbolHistogram hist;
    for (const auto &blk : program.blocks())
        for (const auto &mop : blk.mops)
            for (const auto &op : mop.ops())
                hist.add(op.encode());
    for (auto _ : state) {
        auto table = huffman::CodeTable::build(
            hist, unsigned(state.range(0)));
        benchmark::DoNotOptimize(table.size());
    }
}
BENCHMARK(BM_PackageMerge)->Arg(12)->Arg(16)->Arg(20)
    ->Unit(benchmark::kMillisecond);

} // namespace

TEPIC_BENCH_MAIN(printAblation,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kBase}))
