/**
 * @file
 * Ablation: branch-predictor sophistication (the paper's own future
 * work, §3.4/§7: "more complex branch predictors could be used (e.g.,
 * gshare or PAs Yeh/Patt predictor)").
 *
 * Sweeps the direction predictor under the Base and Compressed fetch
 * organisations. Because the Compressed scheme's whole disadvantage
 * is its larger misprediction penalty, better prediction should help
 * it disproportionately — this bench quantifies whether smarter
 * prediction rescues the compressed scheme on the branchy workloads
 * it loses.
 */

#include "common.hh"

namespace {

using namespace tepic;
using fetch::PredictorConfig;
using fetch::PredictorKind;
using fetch::SchemeClass;
using support::TextTable;

fetch::FetchStats
runWith(const core::Artifacts &a, SchemeClass scheme,
        PredictorKind kind)
{
    auto config = fetch::FetchConfig::paper(scheme);
    config.predictor.kind = kind;
    return core::runFetch(a, scheme, config);
}

void
printAblation()
{
    std::printf("=== Ablation: branch predictor "
                "(2-bit vs gshare vs PAs) ===\n\n");

    TextTable table;
    table.setHeader({"workload", "acc 2bit", "acc gshare", "acc PAs",
                     "base IPC 2bit", "comp IPC 2bit",
                     "comp IPC gshare", "comp IPC PAs",
                     "comp-vs-base gshare"});

    std::vector<double> rel2;
    std::vector<double> relg;
    for (const auto &named : bench::allArtifacts()) {
        if (named.isDspKernel)
            continue;
        const auto &a = named.artifacts();
        const auto base2 =
            runWith(a, SchemeClass::kBase, PredictorKind::kBimodal);
        const auto baseg =
            runWith(a, SchemeClass::kBase, PredictorKind::kGshare);
        const auto comp2 = runWith(a, SchemeClass::kCompressed,
                                   PredictorKind::kBimodal);
        const auto compg = runWith(a, SchemeClass::kCompressed,
                                   PredictorKind::kGshare);
        const auto compp = runWith(a, SchemeClass::kCompressed,
                                   PredictorKind::kPas);
        rel2.push_back(comp2.ipc() / base2.ipc());
        relg.push_back(compg.ipc() / baseg.ipc());

        table.addRow(
            {named.name,
             TextTable::percent(comp2.predictionAccuracy(), 1),
             TextTable::percent(compg.predictionAccuracy(), 1),
             TextTable::percent(compp.predictionAccuracy(), 1),
             TextTable::num(base2.ipc(), 3),
             TextTable::num(comp2.ipc(), 3),
             TextTable::num(compg.ipc(), 3),
             TextTable::num(compp.ipc(), 3),
             TextTable::percent(compg.ipc() / baseg.ipc() - 1.0)});
    }
    std::printf("%s\n", table.render().c_str());

    TextTable summary;
    summary.setHeader({"predictor", "compressed vs base (mean)"});
    summary.addRow({"2bit (paper)",
                    TextTable::percent(support::mean(rel2) - 1.0)});
    summary.addRow({"gshare",
                    TextTable::percent(support::mean(relg) - 1.0)});
    std::printf("%s\n", summary.render().c_str());
    std::printf("(better prediction shrinks the compressed scheme's "
                "decoder-stage penalty exposure — §7's conjecture)\n");
}

void
BM_GsharePredictor(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        auto stats = runWith(a, SchemeClass::kBase,
                             PredictorKind::kGshare);
        benchmark::DoNotOptimize(stats.cycles);
    }
}
BENCHMARK(BM_GsharePredictor)->Unit(benchmark::kMillisecond);

} // namespace

TEPIC_BENCH_MAIN(printAblation,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kBase,
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kTrace}))
