/**
 * @file
 * Figure 7 reproduction: "ATB Characteristics. Total code Size." —
 * the Address Translation Table's contribution to total ROM size for
 * the compressed and tailored images (the paper reports ≈ +15.5 %),
 * and the ATB's runtime behaviour (hit rate, entry count sensitivity).
 */

#include "common.hh"

#include "fetch/att.hh"

namespace {

using namespace tepic;
using support::TextTable;

void
printFigure7()
{
    std::printf("=== Figure 7: ATT size / total code size and ATB "
                "characteristics ===\n\n");

    // The paper's "+15.5%" is relative to the *original* image size
    // (Figure 7 plots total code size against the original); the ATT
    // itself is the same for every encoding of a given program.
    TextTable table;
    table.setHeader({"workload", "ATT KB", "vs original",
                     "full code KB", "full+ATT KB", "vs full img",
                     "ATB hit%"});

    std::vector<double> overheads;
    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const auto &att = a.att();
        const double code_kb =
            double(a.fullImage().image.bitSize) / 8.0 / 1024.0;
        const double att_kb = double(att.totalBits()) / 8.0 / 1024.0;
        const double vs_original =
            att.overheadVs(a.compiled.program.baselineBits());
        const double vs_full =
            att.overheadVs(a.fullImage().image.bitSize);
        overheads.push_back(vs_original);

        const auto stats = core::runFetch(
            a, fetch::SchemeClass::kCompressed, std::nullopt,
            named.name);
        const double atb_rate =
            double(stats.atbHits) /
            double(stats.atbHits + stats.atbMisses);

        table.addRow({named.name, TextTable::num(att_kb, 1),
                      TextTable::percent(vs_original),
                      TextTable::num(code_kb, 1),
                      TextTable::num(code_kb + att_kb, 1),
                      TextTable::percent(vs_full),
                      TextTable::percent(atb_rate, 2)});
    }
    TextTable avg;
    avg.setHeader({"average ATT overhead vs original image"});
    avg.addRow({TextTable::percent(support::mean(overheads))});
    // Headline gauge for the fidelity report (paper: ≈ +15.5 %).
    support::MetricsRegistry::global().setGauge(
        "fig07.att_overhead.avg", support::mean(overheads));
    std::printf("%s\n%s\n", table.render().c_str(),
                avg.render().c_str());
    std::printf("(paper reference: the ATT adds approximately 15.5%% "
                "to the image size)\n\n");

    // ATB entry-count sensitivity on the largest workload.
    TextTable sweep;
    sweep.setHeader({"ATB entries", "hit%", "IPC (compressed, gcc)"});
    const auto *gcc = bench::findArtifacts("gcc");
    if (gcc == nullptr) {
        std::printf("(gcc not in --workloads subset; skipping the "
                    "ATB sweep)\n");
        return;
    }
    for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u}) {
        auto config =
            fetch::FetchConfig::paper(fetch::SchemeClass::kCompressed);
        config.atbEntries = entries;
        const auto stats = core::runFetch(
            gcc->artifacts(), fetch::SchemeClass::kCompressed,
            config, "gcc");
        sweep.addRow({std::to_string(entries),
                      TextTable::percent(
                          double(stats.atbHits) /
                          double(stats.atbHits + stats.atbMisses), 2),
                      TextTable::num(stats.ipc(), 3)});
    }
    std::printf("%s\n", sweep.render().c_str());
}

void
BM_AttBuild(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        auto att = fetch::Att::build(a.fullImage().image,
                                     a.compiled.program);
        benchmark::DoNotOptimize(att.totalBits());
    }
}
BENCHMARK(BM_AttBuild)->Unit(benchmark::kMicrosecond);

} // namespace

TEPIC_BENCH_MAIN(printFigure7,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kAtt,
                     tepic::core::ArtifactKind::kTrace}))
