/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses: build the
 * full artefact set once per binary, cache it, and print paper-style
 * tables. Every bench binary follows the same pattern:
 *
 *   1. print the reproduced table/figure rows (the deliverable),
 *   2. hand control to google-benchmark for the timing section.
 */

#ifndef TEPIC_BENCH_COMMON_HH
#define TEPIC_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace tepic::bench {

struct NamedArtifacts
{
    std::string name;
    bool isDspKernel = false;
    core::Artifacts artifacts;
};

/** Build (once) the artefacts for every workload in the suite. */
inline const std::vector<NamedArtifacts> &
allArtifacts()
{
    static const std::vector<NamedArtifacts> artifacts = [] {
        std::vector<NamedArtifacts> list;
        for (const auto &w : workloads::allWorkloads()) {
            std::fprintf(stderr, "[bench] building artifacts for %s\n",
                         w.name.c_str());
            NamedArtifacts named;
            named.name = w.name;
            named.isDspKernel = w.isDspKernel;
            named.artifacts = core::buildArtifacts(w.source);
            list.push_back(std::move(named));
        }
        return list;
    }();
    return artifacts;
}

/** Standard bench main: print the table, then run timings. */
#define TEPIC_BENCH_MAIN(print_fn)                                     \
    int                                                                \
    main(int argc, char **argv)                                        \
    {                                                                  \
        print_fn();                                                    \
        ::benchmark::Initialize(&argc, argv);                          \
        ::benchmark::RunSpecifiedBenchmarks();                         \
        return 0;                                                      \
    }

} // namespace tepic::bench

#endif // TEPIC_BENCH_COMMON_HH
