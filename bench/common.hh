/**
 * @file
 * Shared plumbing for the figure-reproduction harnesses, built on the
 * parallel artifact engine. Every bench binary follows the same
 * pattern:
 *
 *   1. parse the shared BenchOptions CLI layer (--workloads=,
 *      --schemes=, --jobs=, --trace=, --metrics=) before
 *      google-benchmark sees argv,
 *   2. build the requested artefacts for the requested workloads —
 *      up front, in main, so build logging never interleaves with
 *      benchmark output and build failures surface before timings,
 *   3. print the reproduced table/figure rows (the deliverable),
 *   4. snapshot observability: write --metrics=/BENCH_fetch.json and
 *      print the engine cache + per-phase timing summary to stderr
 *      (before the timing loops run, so the deterministic metric
 *      sections are untouched by machine-dependent iteration counts),
 *   5. hand control to google-benchmark for the timing section, then
 *      flush the --trace= file (timed loops are included in traces —
 *      traces are wall-clock data anyway).
 *
 * Each binary declares the artefact kinds it actually consumes via
 * TEPIC_BENCH_MAIN's request argument; the engine builds nothing
 * else. `--schemes=` narrows (or widens) that set from the command
 * line, `--workloads=` selects a workload subset, and `--jobs=`
 * controls engine parallelism (output is bit-identical for any jobs
 * value — the determinism guarantee is tested in tests/test_engine).
 */

#ifndef TEPIC_BENCH_COMMON_HH
#define TEPIC_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <cstdlib>

#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "fetch/cache_stats.hh"
#include "fetch/hot_stats.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/profiler.hh"
#include "support/sched.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "support/trace.hh"
#include "workloads/workload.hh"

namespace tepic::bench {

/** The shared CLI layer, parsed before google-benchmark init. */
struct BenchOptions
{
    std::vector<std::string> workloads;  ///< empty = the full suite
    core::ArtifactRequest request;       ///< what to build
    unsigned jobs = 0;                   ///< 0 = hardware concurrency
    std::string tracePath;               ///< Chrome trace JSON out
    std::string metricsPath;             ///< metrics JSON out
    std::string profCollapsePath;        ///< collapsed-stack out
    std::string benchName;               ///< argv[0] basename
};

/** The harness CLI contract, shared by every bench binary. */
inline void
printBenchUsage(const std::string &bench_name, std::FILE *out)
{
    std::fprintf(
        out,
        "usage: %s [options] [--benchmark_* flags]\n"
        "  --workloads=a,b       run a workload subset (default: all)\n"
        "  --schemes=s1,s2       artefact kinds to build (see\n"
        "                        core::ArtifactRequest::parse)\n"
        "  --jobs=N              engine parallelism (0 = hardware)\n"
        "  --trace=FILE          write a Chrome trace JSON\n"
        "  --metrics=FILE        write the metrics snapshot JSON\n"
        "  --prof-collapse=FILE  sample the run; write FlameGraph\n"
        "                        collapsed stacks\n"
        "  --log-level=LEVEL     debug|info|warn|error|none\n"
        "  --help                print this and exit\n"
        "Unrecognised --flags are an error; google-benchmark's own\n"
        "--benchmark_* and --v= flags pass through untouched.\n",
        bench_name.c_str());
}

/** argv[0] stripped to its basename: the canonical bench name. */
inline std::string
benchNameFromArgv0(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name.empty() ? "bench" : name;
}

/**
 * Parse and strip the harness flags from argv. `--schemes=` replaces
 * the binary's default request but inherits its trace bit (traces are
 * an input of the fetch sims, not a scheme a user would think to
 * list).
 */
inline BenchOptions
parseBenchOptions(int *argc, char **argv,
                  core::ArtifactRequest default_request)
{
    BenchOptions options;
    options.request = default_request;
    options.benchName = benchNameFromArgv0(*argc > 0 ? argv[0]
                                                     : nullptr);
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--workloads=", 12) == 0) {
            std::string list(arg + 12);
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos) {
                    options.workloads.push_back(
                        list.substr(pos, comma - pos));
                }
                pos = comma + 1;
            }
        } else if (std::strncmp(arg, "--schemes=", 10) == 0) {
            auto parsed = core::ArtifactRequest::parse(arg + 10);
            if (default_request.has(core::ArtifactKind::kTrace))
                parsed = parsed.with(core::ArtifactKind::kTrace);
            options.request = parsed;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            options.jobs = unsigned(std::atoi(arg + 7));
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            options.tracePath = arg + 8;
        } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
            options.metricsPath = arg + 10;
        } else if (std::strncmp(arg, "--prof-collapse=", 16) == 0) {
            options.profCollapsePath = arg + 16;
        } else if (std::strncmp(arg, "--log-level=", 12) == 0) {
            // CLI takes precedence over the TEPIC_LOG env filter.
            const char *level = arg + 12;
            if (!support::isLogLevelName(level)) {
                TEPIC_FATAL("unknown --log-level '", level,
                            "' (expected debug|info|warn|error|none)");
            }
            support::setLogThreshold(support::parseLogLevel(level));
        } else if (std::strcmp(arg, "--help") == 0) {
            printBenchUsage(options.benchName, stdout);
            std::exit(0);
        } else if (std::strncmp(arg, "--benchmark_", 12) == 0 ||
                   std::strncmp(arg, "--v=", 4) == 0) {
            // google-benchmark's namespace; forwarded untouched.
            argv[out++] = argv[i];
        } else if (std::strncmp(arg, "--", 2) == 0) {
            // A typo'd harness flag silently reaching
            // google-benchmark would run the full suite with the
            // option dropped — fail loudly instead.
            std::fprintf(stderr, "%s: unknown flag '%s'\n",
                         options.benchName.c_str(), arg);
            printBenchUsage(options.benchName, stderr);
            std::exit(2);
        } else {
            argv[out++] = argv[i];
            continue;
        }
    }
    *argc = out;
    return options;
}

struct NamedArtifacts
{
    std::string name;
    bool isDspKernel = false;
    std::shared_ptr<const core::Artifacts> ptr;

    const core::Artifacts &artifacts() const { return *ptr; }
};

namespace detail {

inline std::unique_ptr<core::ArtifactEngine> &
engineSlot()
{
    static std::unique_ptr<core::ArtifactEngine> engine;
    return engine;
}

inline std::vector<NamedArtifacts> &
artifactsSlot()
{
    static std::vector<NamedArtifacts> artifacts;
    return artifacts;
}

} // namespace detail

/** The binary's engine; valid after buildAllArtifacts(). */
inline core::ArtifactEngine &
benchEngine()
{
    auto &engine = detail::engineSlot();
    TEPIC_ASSERT(engine != nullptr,
                 "benchEngine() used before buildAllArtifacts()");
    return *engine;
}

/**
 * Build the requested artefacts for every selected workload, batched
 * through the engine. Called from TEPIC_BENCH_MAIN before any table
 * printing or benchmark registration; all logging goes to stderr so
 * stdout tables stay byte-identical across --jobs values.
 */
inline void
buildAllArtifacts(const BenchOptions &options)
{
    auto &engine = detail::engineSlot();
    TEPIC_ASSERT(engine == nullptr,
                 "buildAllArtifacts() called twice");
    engine = std::make_unique<core::ArtifactEngine>(options.jobs);

    std::vector<const workloads::Workload *> selected;
    if (options.workloads.empty()) {
        for (const auto &w : workloads::allWorkloads())
            selected.push_back(&w);
    } else {
        for (const auto &name : options.workloads)
            selected.push_back(&workloads::workloadByName(name));
    }

    std::vector<core::BuildRequest> requests;
    requests.reserve(selected.size());
    for (const auto *w : selected) {
        TEPIC_INFORM("[bench] requesting {",
                     options.request.toString(), "} for ", w->name);
        requests.push_back(core::BuildRequest{
            w->source, options.request, {}, w->name});
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::shared_ptr<const core::Artifacts>> built;
    {
        TEPIC_TRACE_SPAN("bench.build_artifacts", "bench");
        built = engine->buildMany(requests);
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    auto &list = detail::artifactsSlot();
    for (std::size_t i = 0; i < selected.size(); ++i) {
        list.push_back(NamedArtifacts{selected[i]->name,
                                      selected[i]->isDspKernel,
                                      std::move(built[i])});
    }

    const auto stats = engine->stats();
    TEPIC_INFORM("[bench] built ", list.size(), " workloads in ",
                 elapsed.count(), " ms with ", engine->jobs(),
                 " jobs (", stats.compiles, " compiles, ",
                 stats.huffmanImages(), " huffman images, ",
                 stats.tailoredImages, " tailored, ", stats.attBuilds,
                 " ATTs, ", stats.cacheHits, " cache hits)");
}

/**
 * Snapshot the process metrics (engine + fetch + phase timings) and
 * report them: a human summary on stderr, `--metrics=` JSON if asked
 * for, and BENCH_fetch.json whenever the binary ran fetch
 * simulations. Must run before google-benchmark's timed loops — they
 * re-run fetch sims with machine-dependent iteration counts, which
 * would poison the deterministic counter section.
 */
inline void
reportBenchSummary(const BenchOptions &options)
{
    auto &metrics = support::MetricsRegistry::global();
    benchEngine().exportMetrics(metrics);

    // Size provenance: fold every built artifact's ledger into the
    // deterministic size.* counter namespace (suite order, so the
    // fold is reproducible) and emit the SIZE_<name>.json treemap
    // artifact alongside the BENCH_<name>.json snapshot.
    std::vector<core::SizeReportEntry> size_entries;
    for (const auto &named : detail::artifactsSlot()) {
        core::recordSizeMetrics(named.artifacts(), metrics);
        if (!core::collectSizeLedgers(named.artifacts()).empty()) {
            size_entries.push_back(
                core::SizeReportEntry{named.name, named.ptr.get()});
        }
    }
    if (!size_entries.empty()) {
        const std::string size_json =
            "SIZE_" + options.benchName + ".json";
        core::writeSizeReport(size_json, options.benchName,
                              size_entries);
        TEPIC_INFORM("[bench] wrote size report to ", size_json);
    }

    const auto stats = benchEngine().stats();
    TEPIC_INFORM("[bench] engine cache: ", stats.cacheHits, " hits / ",
                 stats.cacheMisses, " misses");
    for (const auto &[name, stat] : metrics.timingsSnapshot()) {
        TEPIC_INFORM("[bench] phase ", name, ": sum=", stat.sum(),
                     " ms over ", stat.count(), " samples (mean=",
                     stat.mean(), " ms)");
    }

    // Host-performance attribution: fold the profiler's per-phase
    // counters (runtime section) and throughput gauges into the
    // registry, then write the per-binary PROF_<name>.json rollup.
    // Runs before the BENCH snapshot below so the prof.* gauges are
    // part of it.
    support::prof::exportMetricsTo(metrics);
    const std::string prof_json = "PROF_" + options.benchName + ".json";
    if (support::prof::writeReport(prof_json, options.benchName,
                                   metrics)) {
        TEPIC_INFORM("[bench] wrote profile report to ", prof_json);
    }

    // Scheduling observability: fold the exact-gated sched.* counters
    // into the registry (part of the BENCH snapshot below) and write
    // the per-binary SCHED_<name>.json task-graph report
    // (tools/tepic_critpath.py renders and gates it).
    support::sched::exportMetricsTo(metrics);
    const std::string sched_json =
        "SCHED_" + options.benchName + ".json";
    if (support::sched::writeReport(sched_json, options.benchName)) {
        TEPIC_INFORM("[bench] wrote sched report to ", sched_json);
    }

    // Cache-behavior observability: write the per-binary
    // CACHE_<name>.json report (tools/tepic_cache.py validates,
    // renders and --compare-gates it; the cache.<scheme>.* counters
    // were folded into the registry by runFetch as the print phase
    // ran). The session ends here so the timed loops below re-run
    // the fetch sims unrecorded, at full speed.
    const std::string cache_json =
        "CACHE_" + options.benchName + ".json";
    if (fetch::cachestats::writeReport(cache_json,
                                       options.benchName)) {
        TEPIC_INFORM("[bench] wrote cache report to ", cache_json);
    }
    fetch::cachestats::endSession();

    // Dynamic-behavior observability: same lifecycle as the CACHE
    // report above — HOT_<name>.json is written (tools/tepic_hot.py
    // validates, renders and --compare-gates it) and the session
    // ends before the timed loops so they run unrecorded.
    const std::string hot_json = "HOT_" + options.benchName + ".json";
    if (fetch::hotstats::writeReport(hot_json, options.benchName)) {
        TEPIC_INFORM("[bench] wrote hot report to ", hot_json);
    }
    fetch::hotstats::endSession();

    if (!options.metricsPath.empty()) {
        metrics.writeJsonFile(options.metricsPath);
        TEPIC_INFORM("[bench] wrote metrics to ", options.metricsPath);
    }
    // Canonical per-binary snapshot: the regression-gate baseline
    // (tools/check_regression.py) and fidelity report
    // (tools/tepic_report.py) key off this name.
    const std::string bench_json =
        "BENCH_" + options.benchName + ".json";
    metrics.writeJsonFile(bench_json);
    TEPIC_INFORM("[bench] wrote bench metrics to ", bench_json);
    if (metrics.hasCounterWithPrefix("fetch.")) {
        metrics.writeJsonFile("BENCH_fetch.json");
        TEPIC_INFORM("[bench] wrote fetch metrics to BENCH_fetch.json");
    }
}

/** Artefacts for every selected workload, in suite order. */
inline const std::vector<NamedArtifacts> &
allArtifacts()
{
    const auto &list = detail::artifactsSlot();
    TEPIC_ASSERT(!list.empty(),
                 "allArtifacts() used before buildAllArtifacts() — "
                 "bench binaries must go through TEPIC_BENCH_MAIN");
    return list;
}

/** Lookup by workload name; null when not in the selected subset. */
inline const NamedArtifacts *
findArtifacts(const std::string &name)
{
    for (const auto &named : allArtifacts())
        if (named.name == name)
            return &named;
    return nullptr;
}

/**
 * Standard bench main: parse the shared CLI layer, build the
 * requested artefacts, print the table, then run timings.
 */
#define TEPIC_BENCH_MAIN(print_fn, default_request)                    \
    int                                                                \
    main(int argc, char **argv)                                        \
    {                                                                  \
        const auto bench_options = ::tepic::bench::parseBenchOptions(  \
            &argc, argv, (default_request));                           \
        ::tepic::support::prof::startSession();                        \
        ::tepic::support::sched::startSession(bench_options.jobs);     \
        ::tepic::fetch::cachestats::startSession();                    \
        ::tepic::fetch::hotstats::startSession();                      \
        if (!bench_options.profCollapsePath.empty())                   \
            ::tepic::support::prof::startSampling();                   \
        if (!bench_options.tracePath.empty())                          \
            ::tepic::support::trace::start(bench_options.tracePath);   \
        ::tepic::bench::buildAllArtifacts(bench_options);              \
        print_fn();                                                    \
        ::tepic::bench::reportBenchSummary(bench_options);             \
        ::benchmark::Initialize(&argc, argv);                          \
        ::benchmark::RunSpecifiedBenchmarks();                         \
        if (!bench_options.tracePath.empty())                          \
            ::tepic::support::trace::stop();                           \
        if (!bench_options.profCollapsePath.empty()) {                 \
            ::tepic::support::prof::stopSampling();                    \
            ::tepic::support::prof::writeCollapsed(                    \
                bench_options.profCollapsePath);                       \
        }                                                              \
        return 0;                                                      \
    }

} // namespace tepic::bench

#endif // TEPIC_BENCH_COMMON_HH
