/**
 * @file
 * Figure 5 reproduction: "Different Compression Techniques comparison
 * (code segment only)" — the size of every scheme's image as a
 * percentage of the baseline 40-bit image, per workload.
 *
 * Like the paper, six stream configurations are evaluated; `stream_1`
 * labels the best-compressing one and `stream` the one with the
 * smallest decoder. The paper's reference points: Full ≈ 30 %,
 * Tailored ≈ 64 %, byte ≈ 72 %, stream ≈ 75 % of the original size
 * (absolute values differ here — see EXPERIMENTS.md — but the
 * orderings the paper argues from are checked by the test suite).
 */

#include "common.hh"

#include "decoder/complexity.hh"
#include "schemes/dictionary.hh"
#include "huffman/huffman.hh"

namespace {

using namespace tepic;
using support::TextTable;

void
printFigure5()
{
    std::printf("=== Figure 5: compression technique comparison "
                "(code segment only) ===\n\n");

    TextTable table;
    table.setHeader({"workload", "base KB", "byte", "stream",
                     "stream_1", "full", "tailored", "entropy b/op"});

    std::vector<double> byte_r;
    std::vector<double> stream_r;
    std::vector<double> stream1_r;
    std::vector<double> full_r;
    std::vector<double> tail_r;

    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const std::size_t by_size = a.bestStreamBySize();
        const std::size_t by_dec = a.bestStreamByDecoder();

        // Whole-op entropy: the compression limit §2.2 talks about.
        huffman::SymbolHistogram ops;
        for (const auto &blk : a.compiled.program.blocks())
            for (const auto &mop : blk.mops)
                for (const auto &op : mop.ops())
                    ops.add(op.encode());

        const double byte = a.ratio(a.byteImage().image);
        const double stream = a.ratio(a.streamImage(by_dec).image);
        const double stream1 = a.ratio(a.streamImage(by_size).image);
        const double full = a.ratio(a.fullImage().image);
        const double tailored = a.ratio(a.tailoredImage());
        byte_r.push_back(byte);
        stream_r.push_back(stream);
        stream1_r.push_back(stream1);
        full_r.push_back(full);
        tail_r.push_back(tailored);

        table.addRow({named.name,
                      TextTable::num(
                          double(a.compiled.program.baselineBits()) /
                          8.0 / 1024.0, 1),
                      TextTable::percent(byte),
                      TextTable::percent(stream),
                      TextTable::percent(stream1),
                      TextTable::percent(full),
                      TextTable::percent(tailored),
                      TextTable::num(ops.entropyBits(), 2)});
    }
    table.addRow({"average", "",
                  TextTable::percent(support::mean(byte_r)),
                  TextTable::percent(support::mean(stream_r)),
                  TextTable::percent(support::mean(stream1_r)),
                  TextTable::percent(support::mean(full_r)),
                  TextTable::percent(support::mean(tail_r)), ""});
    std::printf("%s\n", table.render().c_str());

    // Headline gauges for the fidelity report (tools/tepic_report.py):
    // suite-average size as a fraction of the 40-bit baseline.
    auto &metrics = support::MetricsRegistry::global();
    metrics.setGauge("fig05.ratio.byte", support::mean(byte_r));
    metrics.setGauge("fig05.ratio.stream", support::mean(stream_r));
    metrics.setGauge("fig05.ratio.stream_1", support::mean(stream1_r));
    metrics.setGauge("fig05.ratio.full", support::mean(full_r));
    metrics.setGauge("fig05.ratio.tailored", support::mean(tail_r));

    // The six stream configurations, as the paper considered.
    TextTable streams;
    streams.setHeader({"stream config", "avg size", "avg decoder kT"});
    const auto &arts = bench::allArtifacts();
    for (std::size_t s = 0;
         s < schemes::allStreamConfigs().size(); ++s) {
        std::vector<double> sizes;
        double transistors = 0.0;
        for (const auto &named : arts) {
            sizes.push_back(
                named.artifacts().ratio(
                    named.artifacts().streamImage(s).image));
            transistors += double(decoder::decoderTransistors(
                named.artifacts().streamImage(s)));
        }
        streams.addRow({schemes::allStreamConfigs()[s].name,
                        TextTable::percent(support::mean(sizes)),
                        TextTable::num(transistors /
                                       double(arts.size()) / 1000.0,
                                       0)});
    }
    std::printf("%s\n", streams.render().c_str());

    // Related-work comparison (Section 6): the dictionary family the
    // paper contrasts against (Liao's external pointer model,
    // CodePack).
    TextTable dict;
    dict.setHeader({"workload", "dict256 size", "dict hit%",
                    "huff-full size", "dict decoder kT"});
    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const auto img =
            schemes::compressDictionary(a.compiled.program);
        dict.addRow({named.name,
                     TextTable::percent(a.ratio(img.image)),
                     TextTable::percent(img.hitRate(), 1),
                     TextTable::percent(a.ratio(a.fullImage().image)),
                     TextTable::num(
                         double(schemes::dictionaryDecoderTransistors(
                             img)) / 1000.0, 0)});
    }
    std::printf("--- Section 6 comparison: op-dictionary (CodePack/"
                "Liao-style) vs full-op Huffman ---\n\n%s\n",
                dict.render().c_str());
}

void
BM_CompressFull(benchmark::State &state)
{
    const auto &program =
        bench::allArtifacts().front().artifacts().compiled.program;
    for (auto _ : state) {
        auto img = schemes::compressFull(program);
        benchmark::DoNotOptimize(img.image.bitSize);
    }
}
BENCHMARK(BM_CompressFull)->Unit(benchmark::kMillisecond);

void
BM_CompressByte(benchmark::State &state)
{
    const auto &program =
        bench::allArtifacts().front().artifacts().compiled.program;
    for (auto _ : state) {
        auto img = schemes::compressByte(program);
        benchmark::DoNotOptimize(img.image.bitSize);
    }
}
BENCHMARK(BM_CompressByte)->Unit(benchmark::kMillisecond);

void
BM_TailorEncode(benchmark::State &state)
{
    const auto &program =
        bench::allArtifacts().front().artifacts().compiled.program;
    for (auto _ : state) {
        auto isa = schemes::TailoredIsa::build(program);
        auto img = isa.encode(program);
        benchmark::DoNotOptimize(img.bitSize);
    }
}
BENCHMARK(BM_TailorEncode)->Unit(benchmark::kMillisecond);

} // namespace

TEPIC_BENCH_MAIN(printFigure5,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kBase,
                     tepic::core::ArtifactKind::kByte,
                     tepic::core::ArtifactKind::kStream,
                     tepic::core::ArtifactKind::kFull,
                     tepic::core::ArtifactKind::kTailored}))
