/**
 * @file
 * Microbenchmarks over the library's hot kernels: bit streams,
 * Huffman encode/decode, cache/ATB accesses, the full compiler, and
 * block-trace simulation. These are performance regression guards for
 * the library itself (not paper reproductions).
 */

#include <benchmark/benchmark.h>

#include "common.hh"

#include "codec/codec.hh"
#include "compiler/driver.hh"
#include "fetch/att.hh"
#include "fetch/banked_cache.hh"
#include "huffman/huffman.hh"
#include "isa/baseline.hh"
#include "sim/emulator.hh"
#include "support/bitstream.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;

void
BM_BitWriter(benchmark::State &state)
{
    for (auto _ : state) {
        support::BitWriter w;
        for (int i = 0; i < 10000; ++i)
            w.writeBits(std::uint64_t(i) & 0x1fff, 13);
        benchmark::DoNotOptimize(w.byteSize());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BitWriter);

void
BM_BitReader(benchmark::State &state)
{
    support::BitWriter w;
    for (int i = 0; i < 10000; ++i)
        w.writeBits(std::uint64_t(i) & 0x1fff, 13);
    for (auto _ : state) {
        support::BitReader r(w.bytes().data(), w.bitSize());
        std::uint64_t acc = 0;
        for (int i = 0; i < 10000; ++i)
            acc ^= r.readBits(13);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_BitReader);

const huffman::CodeTable &
sampleTable()
{
    static const huffman::CodeTable table = [] {
        huffman::SymbolHistogram hist;
        support::Rng rng(1);
        for (int i = 0; i < 500; ++i)
            hist.add(std::uint64_t(i), rng.below(10000) + 1);
        return huffman::CodeTable::build(hist, 16);
    }();
    return table;
}

void
BM_HuffmanEncode(benchmark::State &state)
{
    const auto &table = sampleTable();
    support::Rng rng(2);
    std::vector<std::uint64_t> symbols;
    for (int i = 0; i < 10000; ++i)
        symbols.push_back(rng.below(500));
    for (auto _ : state) {
        support::BitWriter w;
        for (auto s : symbols)
            table.encode(s, w);
        benchmark::DoNotOptimize(w.byteSize());
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HuffmanEncode);

void
BM_HuffmanDecode(benchmark::State &state)
{
    const auto &table = sampleTable();
    support::Rng rng(2);
    support::BitWriter w;
    for (int i = 0; i < 10000; ++i)
        table.encode(rng.below(500), w);
    for (auto _ : state) {
        support::BitReader r(w.bytes().data(), w.bitSize());
        benchmark::DoNotOptimize(
            codec::decodeChecksum(table, r, 10000));
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HuffmanDecode);

/**
 * The pre-LUT per-bit canonical walk, kept as a measurable reference:
 * the BM_HuffmanDecode / BM_HuffmanDecodeReference ratio is the
 * observable win of the first-level lookup table.
 */
void
BM_HuffmanDecodeReference(benchmark::State &state)
{
    const auto &table = sampleTable();
    support::Rng rng(2);
    support::BitWriter w;
    for (int i = 0; i < 10000; ++i)
        table.encode(rng.below(500), w);
    for (auto _ : state) {
        support::BitReader r(w.bytes().data(), w.bitSize());
        benchmark::DoNotOptimize(
            codec::decodeChecksumReference(table, r, 10000));
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HuffmanDecodeReference);

void
BM_CacheAccess(benchmark::State &state)
{
    fetch::BankedCache cache(fetch::CacheConfig::paperCompressed());
    support::Rng rng(7);
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(std::uint32_t(rng.below(64 * 1024)));
    for (auto _ : state) {
        std::uint64_t acc = 0;
        for (auto a : addrs)
            acc += cache.accessBlock(a, 24).hit;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_CacheAccess);

void
BM_CompileWorkload(benchmark::State &state)
{
    const auto &source =
        workloads::workloadByName("compress").source;
    for (auto _ : state) {
        auto compiled = compiler::compileSource(source);
        benchmark::DoNotOptimize(compiled.program.opCount());
    }
}
BENCHMARK(BM_CompileWorkload)->Unit(benchmark::kMillisecond);

void
BM_BaselineImage(benchmark::State &state)
{
    static const auto compiled = compiler::compileSource(
        workloads::workloadByName("gcc").source);
    for (auto _ : state) {
        auto image = isa::buildBaselineImage(compiled.program);
        benchmark::DoNotOptimize(image.bitSize);
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations()) *
        std::int64_t(compiled.program.opCount()));
}
BENCHMARK(BM_BaselineImage)->Unit(benchmark::kMicrosecond);

/**
 * Deterministic sentinels over the same kernels the timed loops
 * exercise: any functional change to a hot kernel moves one of these
 * counters, which the regression gate (tools/check_regression.py)
 * compares exactly against bench/baselines/BENCH_microbench.json.
 */
void
recordMicroSentinels()
{
    auto &m = support::MetricsRegistry::global();
    // The sentinel pass is the microbench's "kernel work": charge it
    // to kBenchKernel so prof.ops_encoded_per_sec has a denominator.
    support::prof::ProfScope prof(
        support::prof::Phase::kBenchKernel);

    // The microbench has no ArtifactEngine DAG, but its sentinel
    // pass is still schedulable work: declare it up front (the
    // whole graph before anything runs, like the engine does) so
    // SCHED_microbench.json exercises the serial-on-main shape of
    // the tepic-sched-v1 contract. The only true edge is
    // compile -> baseline (the image needs the compiled program).
    const auto t_bits = support::sched::declareTask(
        {"micro/bitwriter", "micro", "micro", "", {}, false});
    const auto t_huff = support::sched::declareTask(
        {"micro/huffman", "micro", "micro", "", {}, false});
    const auto t_cache = support::sched::declareTask(
        {"micro/cache", "micro", "micro", "", {}, false});
    const auto t_compile = support::sched::declareTask(
        {"compress/compile", "compile", "compress", "", {}, false});
    const auto t_base = support::sched::declareTask(
        {"compress/base", "base", "compress", "", {t_compile},
         false});

    {
        support::sched::TaskScope scope(t_bits);
        support::BitWriter w;
        for (int i = 0; i < 10000; ++i)
            w.writeBits(std::uint64_t(i) & 0x1fff, 13);
        m.addCounter("micro.bitwriter.bytes", w.byteSize());
    }

    {
        support::sched::TaskScope scope(t_huff);
        const auto &table = sampleTable();
        support::Rng rng(2);
        support::BitWriter hw;
        for (int i = 0; i < 10000; ++i)
            table.encode(rng.below(500), hw);
        m.addCounter("micro.huffman.encoded_bits", hw.bitSize());
        // The production (LUT) decoder and the canonical-walk
        // reference must agree symbol-for-symbol; the sentinel below
        // is the LUT path's checksum and the reference run re-derives
        // it exactly.
        support::BitReader r(hw.bytes().data(), hw.bitSize());
        const std::uint64_t checksum =
            codec::decodeChecksum(table, r, 10000);
        support::BitReader ref_reader(hw.bytes().data(),
                                      hw.bitSize());
        TEPIC_ASSERT(codec::decodeChecksumReference(
                         table, ref_reader, 10000) == checksum,
                     "LUT decode diverged from the canonical "
                     "reference");
        m.addCounter("micro.huffman.decode_checksum", checksum);
    }

    {
        support::sched::TaskScope scope(t_cache);
        fetch::BankedCache cache(
            fetch::CacheConfig::paperCompressed());
        support::Rng cache_rng(7);
        std::uint64_t hits = 0;
        for (int i = 0; i < 4096; ++i) {
            hits +=
                cache
                    .accessBlock(
                        std::uint32_t(cache_rng.below(64 * 1024)), 24)
                    .hit;
        }
        m.addCounter("micro.cache.hits", hits);
    }

    const compiler::CompiledProgram compiled = [&] {
        support::sched::TaskScope scope(t_compile);
        return compiler::compileSource(
            workloads::workloadByName("compress").source);
    }();
    m.addCounter("micro.compile.ops", compiled.program.opCount());
    {
        support::sched::TaskScope scope(t_base);
        m.addCounter("micro.baseline.image_bits",
                     isa::buildBaselineImage(compiled.program)
                         .bitSize);
    }

    // Deterministic work units behind prof.ops_encoded_per_sec: the
    // 10000 Huffman symbol encodes plus the baseline image's ops.
    m.addCounter("prof.work.ops_encoded",
                 10000 + compiled.program.opCount());
}

} // namespace

int
main(int argc, char **argv)
{
    // The shared CLI layer for --metrics=/--log-level= consistency
    // with the figure benches; no artefacts are requested — the
    // sentinels build what they need inline.
    const auto options =
        tepic::bench::parseBenchOptions(&argc, argv, {});
    support::prof::startSession();
    support::sched::startSession(options.jobs);
    fetch::cachestats::startSession();
    fetch::hotstats::startSession();
    if (!options.profCollapsePath.empty())
        support::prof::startSampling();
    recordMicroSentinels();
    auto &metrics = support::MetricsRegistry::global();
    support::prof::exportMetricsTo(metrics);
    const std::string prof_json =
        "PROF_" + options.benchName + ".json";
    if (support::prof::writeReport(prof_json, options.benchName,
                                   metrics)) {
        TEPIC_INFORM("[bench] wrote profile report to ", prof_json);
    }
    support::sched::exportMetricsTo(metrics);
    const std::string sched_json =
        "SCHED_" + options.benchName + ".json";
    if (support::sched::writeReport(sched_json,
                                    options.benchName)) {
        TEPIC_INFORM("[bench] wrote sched report to ", sched_json);
    }
    const std::string cache_json =
        "CACHE_" + options.benchName + ".json";
    if (fetch::cachestats::writeReport(cache_json,
                                       options.benchName)) {
        TEPIC_INFORM("[bench] wrote cache report to ", cache_json);
    }
    fetch::cachestats::endSession();
    const std::string hot_json =
        "HOT_" + options.benchName + ".json";
    if (fetch::hotstats::writeReport(hot_json,
                                     options.benchName)) {
        TEPIC_INFORM("[bench] wrote hot report to ", hot_json);
    }
    fetch::hotstats::endSession();
    if (!options.metricsPath.empty())
        metrics.writeJsonFile(options.metricsPath);
    const std::string bench_json =
        "BENCH_" + options.benchName + ".json";
    metrics.writeJsonFile(bench_json);
    TEPIC_INFORM("[bench] wrote bench metrics to ", bench_json);
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    if (!options.profCollapsePath.empty()) {
        support::prof::stopSampling();
        support::prof::writeCollapsed(options.profCollapsePath);
    }
    return 0;
}
