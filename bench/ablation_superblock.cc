/**
 * @file
 * Ablation: complex blocks as fetch units (the paper's future work,
 * §7; §3.1 lays out the ground rules). Compares basic-block fetch
 * against profile-formed superblock units for the Base and Compressed
 * organisations: fewer ATT entries and predictions per delivered op,
 * at the cost of side-exit mispredictions and over-fetch.
 */

#include "common.hh"

#include "fetch/superblock.hh"

namespace {

using namespace tepic;
using fetch::SchemeClass;
using support::TextTable;

void
printAblation()
{
    // This harness requests only {Base, Trace}: the selective-build
    // contract says the engine must not have touched any Huffman or
    // tailored builder. Enforced here so a regression fails loudly.
    const auto engine_stats = bench::benchEngine().stats();
    TEPIC_ASSERT(engine_stats.huffmanImages() == 0 &&
                     engine_stats.tailoredImages == 0,
                 "base-only bench built compressed images: ",
                 engine_stats.huffmanImages(), " huffman, ",
                 engine_stats.tailoredImages, " tailored");
    std::fprintf(stderr,
                 "[bench] selective build check: 0 huffman, 0 "
                 "tailored images built for a base-only request\n");

    std::printf("=== Ablation: basic-block vs complex (superblock) "
                "fetch units ===\n\n");

    TextTable table;
    table.setHeader({"workload", "units/blocks", "avg blk/unit",
                     "side exit%", "BB IPC", "unit IPC",
                     "ATT entries saved", "pred lookups saved"});

    std::vector<double> gains;
    for (const auto &named : bench::allArtifacts()) {
        const auto &a = named.artifacts();
        const auto units = fetch::formFetchUnits(
            a.compiled.program, a.trace());
        const auto config = fetch::FetchConfig::paper(
            SchemeClass::kBase);
        const auto plain = core::runFetch(a, SchemeClass::kBase,
                                          std::nullopt, named.name);
        const auto unit = fetch::simulateUnitFetch(
            a.baseImage(), a.compiled.program, a.trace(), units,
            config);
        gains.push_back(unit.fetch.ipc() / plain.ipc());

        const std::uint64_t plain_preds =
            plain.predictionsCorrect + plain.predictionsWrong;
        const std::uint64_t unit_preds =
            unit.fetch.predictionsCorrect +
            unit.fetch.predictionsWrong;
        table.addRow(
            {named.name,
             std::to_string(units.units) + "/" +
                 std::to_string(units.headOf.size()),
             TextTable::num(units.averageBlocksPerUnit(), 2),
             TextTable::percent(unit.sideExitRate(), 1),
             TextTable::num(plain.ipc(), 3),
             TextTable::num(unit.fetch.ipc(), 3),
             TextTable::percent(
                 1.0 - double(units.units) /
                           double(units.headOf.size())),
             TextTable::percent(
                 1.0 - double(unit_preds) / double(plain_preds))});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("mean IPC effect of complex fetch units: %+.1f%%\n",
                (support::mean(gains) - 1.0) * 100.0);
    std::printf("(the paper's §3.1: complex blocks are \"a matter of "
                "performance, not correctness\" as long as side exits "
                "are rare)\n");
}

void
BM_UnitFormation(benchmark::State &state)
{
    const auto &a = bench::allArtifacts().front().artifacts();
    for (auto _ : state) {
        auto units = fetch::formFetchUnits(a.compiled.program,
                                           a.execution.trace);
        benchmark::DoNotOptimize(units.units);
    }
}
BENCHMARK(BM_UnitFormation)->Unit(benchmark::kMillisecond);

} // namespace

TEPIC_BENCH_MAIN(printAblation,
                 (tepic::core::ArtifactRequest{
                     tepic::core::ArtifactKind::kBase,
                     tepic::core::ArtifactKind::kTrace}))
