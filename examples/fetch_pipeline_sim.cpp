/**
 * @file
 * Fetch-pipeline simulator: run the paper's three IFetch
 * organisations over one workload and break the cycles down.
 *
 *   $ ./fetch_pipeline_sim m88ksim
 *   $ ./fetch_pipeline_sim gcc --cache-kb 8     # shrink the caches
 *   $ ./fetch_pipeline_sim perl --atb 16        # starve the ATB
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using tepic::fetch::SchemeClass;
    using tepic::support::TextTable;

    std::string name = "m88ksim";
    unsigned cache_kb = 0;  // 0 = paper default
    unsigned atb = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache-kb") == 0 && i + 1 < argc)
            cache_kb = unsigned(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--atb") == 0 && i + 1 < argc)
            atb = unsigned(std::atoi(argv[++i]));
        else
            name = argv[i];
    }

    const auto &workload = tepic::workloads::workloadByName(name);
    std::printf("workload: %s — %s\n", workload.name.c_str(),
                workload.description.c_str());

    // The fetch study needs the three organisation images, the block
    // trace, and the memoized decoders runFetch replays blocks from —
    // not the byte/stream alphabets buildArtifacts() would also pay.
    using tepic::core::ArtifactKind;
    const auto built = tepic::core::ArtifactEngine::global().build(
        workload.source,
        tepic::core::ArtifactRequest{
            ArtifactKind::kBase, ArtifactKind::kFull,
            ArtifactKind::kTailored, ArtifactKind::kTrace,
            ArtifactKind::kDecoder});
    const auto &artifacts = *built;
    std::printf("trace: %zu block fetches, %lu dynamic ops\n\n",
                artifacts.execution.trace.events.size(),
                (unsigned long)artifacts.execution.dynamicOps);

    TextTable table;
    table.setHeader({"scheme", "image KB", "cycles", "IPC",
                     "vs ideal", "L1 hit", "L0 hit", "pred acc",
                     "ATB hit", "Mbit flips"});
    for (auto scheme : {SchemeClass::kBase, SchemeClass::kCompressed,
                        SchemeClass::kTailored}) {
        auto config = tepic::fetch::FetchConfig::paper(scheme);
        if (cache_kb) {
            config.cache.sets =
                cache_kb * 1024 /
                (config.cache.ways * config.cache.lineBytes);
        }
        if (atb)
            config.atbEntries = atb;
        const auto stats =
            tepic::core::runFetch(artifacts, scheme, config);
        const auto &image = tepic::core::imageFor(artifacts, scheme);
        const double l0 = stats.l0Hits + stats.l0Misses
            ? double(stats.l0Hits) /
                  double(stats.l0Hits + stats.l0Misses)
            : 0.0;
        table.addRow(
            {tepic::fetch::schemeClassName(scheme),
             TextTable::num(double(image.bitSize) / 8.0 / 1024.0, 1),
             std::to_string(stats.cycles),
             TextTable::num(stats.ipc(), 3),
             TextTable::percent(stats.ipc() / stats.idealIpc()),
             TextTable::percent(stats.l1HitRate(), 2),
             TextTable::percent(l0, 1),
             TextTable::percent(stats.predictionAccuracy(), 1),
             TextTable::percent(
                 double(stats.atbHits) /
                     double(stats.atbHits + stats.atbMisses), 1),
             TextTable::num(double(stats.busBitFlips) / 1e6, 3)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\n(ideal = perfect cache + perfect prediction: "
                "IPC %.3f)\n",
                double(artifacts.execution.dynamicOps) /
                    double(artifacts.execution.dynamicMops));
    return 0;
}
