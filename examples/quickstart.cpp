/**
 * @file
 * Quickstart: the whole library in one page.
 *
 * Compiles a small tinkerc program through the artifact engine, runs
 * it in the emulator, builds every encoded image (baseline / Huffman
 * byte/stream/full / tailored ISA), verifies the round trips, and
 * fetch-simulates the three cache organisations of the paper.
 *
 * The engine is request-based: ArtifactRequest::all() builds
 * everything, `{kBase, kTrace}` would build just enough for a
 * baseline fetch simulation, and repeated build() calls for the same
 * source and config return the same cached object.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "core/artifact_engine.hh"
#include "support/table.hh"

int
main()
{
    // 1. A program in tinkerc, the toolchain's input language.
    const char *source = R"(
        var histogram[64];

        func classify(x): int {
            if (x < 0) { return 0; }
            if (x < 100) { return x / 25 + 1; }
            return 5;
        }

        func main(): int {
            var seed = 7;
            for (var i = 0; i < 5000; i = i + 1) {
                seed = seed * 1103515245 + 12345;
                var sample = (seed >> 16) % 160 - 30;
                var bucket = classify(sample);
                histogram[bucket] = histogram[bucket] + 1;
            }
            var acc = 0;
            for (var b = 0; b < 6; b = b + 1) {
                acc = acc * 31 + histogram[b];
            }
            return acc;
        }
    )";

    // 2. One call: compile (profile-guided), emulate, build every
    //    requested image, ready for the fetch simulators. The engine
    //    parallelises across schemes and memoizes by content, so a
    //    second build() of the same source is free.
    tepic::core::ArtifactEngine engine;
    const tepic::core::Artifacts &artifacts = *engine.build(
        source, tepic::core::ArtifactRequest::all());

    std::printf("compiled: %zu blocks, %zu ops, ILP %.2f, "
                "exit value %d\n",
                artifacts.compiled.program.blocks().size(),
                artifacts.compiled.program.opCount(),
                artifacts.compiled.schedStats.ilp(),
                artifacts.execution.exitValue);
    std::printf("executed: %lu ops in %lu MOPs over %lu blocks\n\n",
                (unsigned long)artifacts.execution.dynamicOps,
                (unsigned long)artifacts.execution.dynamicMops,
                (unsigned long)artifacts.execution.dynamicBlocks);

    // 3. Every image decodes back to the identical op stream.
    tepic::core::verifyRoundTrips(artifacts);
    std::printf("round trips: all schemes verified bit-exact\n\n");

    // 4. Compression summary (the paper's Figure 5 for this program).
    tepic::support::TextTable sizes;
    sizes.setHeader({"scheme", "bits", "vs base", "decoder T"});
    for (const auto &row : tepic::core::summarise(artifacts)) {
        sizes.addRow({row.name, std::to_string(row.codeBits),
                      tepic::support::TextTable::percent(
                          row.ratioVsBase),
                      std::to_string(row.decoderTransistors)});
    }
    std::printf("%s\n", sizes.render().c_str());

    // 5. The three IFetch organisations (Figure 13 for this program).
    tepic::support::TextTable fetch;
    fetch.setHeader({"scheme", "IPC", "ideal", "L1 hit", "pred acc"});
    for (auto scheme : {tepic::fetch::SchemeClass::kBase,
                        tepic::fetch::SchemeClass::kCompressed,
                        tepic::fetch::SchemeClass::kTailored}) {
        const auto stats = tepic::core::runFetch(artifacts, scheme);
        fetch.addRow({tepic::fetch::schemeClassName(scheme),
                      tepic::support::TextTable::num(stats.ipc(), 3),
                      tepic::support::TextTable::num(
                          stats.idealIpc(), 3),
                      tepic::support::TextTable::percent(
                          stats.l1HitRate(), 2),
                      tepic::support::TextTable::percent(
                          stats.predictionAccuracy(), 1)});
    }
    std::printf("%s", fetch.render().c_str());
    return 0;
}
