/**
 * @file
 * Tailored-decoder generator: the compiler-emits-the-decoder story of
 * the paper (§2.3: "the Verilog code for the decoder is produced by
 * the compiler and used to configure the PLA").
 *
 *   $ ./tailored_decoder_gen matmul            # print to stdout
 *   $ ./tailored_decoder_gen gcc decoder.v     # write to a file
 */

#include <cstdio>
#include <fstream>

#include "core/artifact_engine.hh"
#include "decoder/complexity.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "matmul";
    const auto &workload = tepic::workloads::workloadByName(name);

    // Only the tailored ISA is consumed: request exactly that (the
    // engine then builds no baseline or Huffman image at all).
    const auto artifacts = tepic::core::ArtifactEngine::global().build(
        workload.source,
        tepic::core::ArtifactRequest{
            tepic::core::ArtifactKind::kTailored});

    const auto &isa = artifacts->tailoredIsa();
    std::fprintf(stderr,
                 "tailored ISA for %s: header %u bits, %u opcodes, "
                 "image %.1f%% of baseline, PLA estimate %lu "
                 "transistors\n",
                 name.c_str(), isa.headerBits(),
                 isa.distinctOpcodes(),
                 100.0 * artifacts->ratio(artifacts->tailoredImage()),
                 (unsigned long)
                     tepic::decoder::tailoredDecoderTransistors(isa));

    const std::string verilog =
        isa.emitVerilog(name + "_tailored_decoder");
    if (argc > 2) {
        std::ofstream out(argv[2]);
        out << verilog;
        std::fprintf(stderr, "wrote %zu bytes to %s\n",
                     verilog.size(), argv[2]);
    } else {
        std::fputs(verilog.c_str(), stdout);
    }
    return 0;
}
