/**
 * @file
 * Compression explorer: compare every compression scheme on a named
 * workload or on a tinkerc source file.
 *
 *   $ ./compression_explorer gcc
 *   $ ./compression_explorer path/to/program.tk
 *   $ ./compression_explorer --list
 *
 * Prints the per-scheme size/decoder tradeoff (Figures 5 + 10 for one
 * program), the per-stream-configuration detail, and the tailored
 * ISA's per-format field report.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "decoder/complexity.hh"
#include "huffman/huffman.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace {

std::string
loadSource(const std::string &arg)
{
    for (const auto &w : tepic::workloads::allWorkloads())
        if (w.name == arg)
            return w.source;
    std::ifstream in(arg);
    if (!in) {
        std::fprintf(stderr,
                     "error: '%s' is neither a workload nor a "
                     "readable file\n", arg.c_str());
        std::exit(1);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using tepic::support::TextTable;

    if (argc == 2 && std::strcmp(argv[1], "--list") == 0) {
        for (const auto &w : tepic::workloads::allWorkloads())
            std::printf("%-10s %s\n", w.name.c_str(),
                        w.description.c_str());
        return 0;
    }
    const std::string source =
        loadSource(argc > 1 ? argv[1] : "compress");

    // A size study needs every image but no trace: ask for exactly
    // that instead of the build-everything wrapper.
    using tepic::core::ArtifactKind;
    const auto built = tepic::core::ArtifactEngine::global().build(
        source,
        tepic::core::ArtifactRequest{
            ArtifactKind::kBase, ArtifactKind::kByte,
            ArtifactKind::kStream, ArtifactKind::kFull,
            ArtifactKind::kTailored});
    const auto &artifacts = *built;
    tepic::core::verifyRoundTrips(artifacts);

    const auto &program = artifacts.compiled.program;
    std::printf("program: %zu ops, %zu MOPs, %zu blocks, "
                "baseline %.1f KB\n",
                program.opCount(), program.mopCount(),
                program.blocks().size(),
                double(program.baselineBits()) / 8.0 / 1024.0);

    tepic::huffman::SymbolHistogram ops;
    for (const auto &blk : program.blocks())
        for (const auto &mop : blk.mops)
            for (const auto &op : mop.ops())
                ops.add(op.encode());
    std::printf("whole-op entropy: %.2f bits/op over %zu distinct "
                "ops (limit: %.1f%% of baseline)\n\n",
                ops.entropyBits(), ops.distinctSymbols(),
                100.0 * ops.entropyBits() / 40.0);

    TextTable table;
    table.setHeader({"scheme", "KB", "vs base", "decoder T",
                     "bits saved per decoder kT"});
    for (const auto &row : tepic::core::summarise(artifacts)) {
        const double saved =
            double(program.baselineBits()) - double(row.codeBits);
        const std::string efficiency = row.decoderTransistors
            ? TextTable::num(saved /
                             (double(row.decoderTransistors) / 1000.0),
                             1)
            : "-";
        table.addRow({row.name,
                      TextTable::num(double(row.codeBits) / 8.0 /
                                     1024.0, 2),
                      TextTable::percent(row.ratioVsBase),
                      std::to_string(row.decoderTransistors),
                      efficiency});
    }
    std::printf("%s\n", table.render().c_str());

    // Tailored ISA field report: where do the bits go?
    std::printf("tailored ISA: header %u bits (tail 1 + type %u + "
                "opcode %u), %u distinct opcodes\n",
                artifacts.tailoredIsa().headerBits(),
                artifacts.tailoredIsa().opTypeWidth(),
                artifacts.tailoredIsa().opcodeWidth(),
                artifacts.tailoredIsa().distinctOpcodes());
    TextTable formats;
    formats.setHeader({"format", "orig bits", "tailored bits",
                       "dropped fields"});
    for (unsigned f = 0; f < tepic::isa::kNumFormats; ++f) {
        const auto &tf =
            artifacts.tailoredIsa().format(tepic::isa::Format(f));
        if (!tf.used)
            continue;
        unsigned dropped = 0;
        for (const auto &field : tf.fields)
            if (field.width == 0)
                ++dropped;
        formats.addRow({tepic::isa::formatName(tepic::isa::Format(f)),
                        "40",
                        std::to_string(
                            artifacts.tailoredIsa().headerBits() +
                            tf.bodyBits),
                        std::to_string(dropped)});
    }
    std::printf("%s", formats.render().c_str());
    return 0;
}
