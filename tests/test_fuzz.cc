/**
 * @file
 * Differential fuzzing of the whole toolchain: deterministic random
 * tinkerc programs (bounded loops, guarded division, in-bounds
 * indexing) must produce the same exit value under
 *
 *   -O2 + hoisting,  -O2 alone,  -O0,  and a 1-wide machine,
 *
 * and every compressed/tailored image of the -O2 build must decode
 * back bit-exactly. Any disagreement is a compiler, scheduler,
 * allocator, emulator or codec bug.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "codec/codec.hh"
#include "compiler/driver.hh"
#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "fetch/att.hh"
#include "fetch/fetch_sim.hh"
#include "isa/baseline.hh"
#include "schemes/huffman_scheme.hh"
#include "schemes/tailored.hh"
#include "sim/emulator.hh"
#include "support/rng.hh"

namespace {

using tepic::support::Rng;

/** Generates one random, always-terminating tinkerc program. */
class ProgramGen
{
  public:
    explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

    std::string
    generate()
    {
        os_ << "var g0 = " << rng_.range(1, 1000) << ";\n";
        os_ << "var g1 = " << rng_.range(1, 1000) << ";\n";
        os_ << "var arr[16];\n";

        // A couple of helper functions.
        const int helpers = int(rng_.range(1, 3));
        for (int h = 0; h < helpers; ++h) {
            os_ << "func h" << h << "(a, b): int {\n";
            indent_ = 1;
            vars_ = {"a", "b", "g0", "g1"};
            mutables_ = vars_;
            emitStmts(int(rng_.range(2, 5)), 2);
            line("return " + expr(3) + ";");
            os_ << "}\n";
            helpers_ = h + 1;
        }

        os_ << "func main(): int {\n";
        indent_ = 1;
        vars_ = {"g0", "g1"};
        mutables_ = vars_;
        line("var acc = 1;");
        vars_.push_back("acc");
        mutables_.push_back("acc");
        emitStmts(int(rng_.range(4, 9)), 3);
        line("for (var i = 0; i < 16; i = i + 1) { acc = acc + "
             "arr[i]; }");
        line("return acc;");
        os_ << "}\n";
        return os_.str();
    }

  private:
    Rng rng_;
    std::ostringstream os_;
    int indent_ = 0;
    int helpers_ = 0;
    int loopDepth_ = 0;
    int tmpCount_ = 0;
    std::vector<std::string> vars_;      ///< readable
    std::vector<std::string> mutables_;  ///< writable (no loop ivs)

    void
    line(const std::string &text)
    {
        for (int i = 0; i < indent_; ++i)
            os_ << "    ";
        os_ << text << '\n';
    }

    std::string
    var()
    {
        return vars_[rng_.below(vars_.size())];
    }

    /** A variable that is safe to assign (never a loop iv). */
    std::string
    mutableVar()
    {
        return mutables_[rng_.below(mutables_.size())];
    }

    /** An expression of bounded depth; only safe operators. */
    std::string
    expr(int depth)
    {
        if (depth == 0 || rng_.chance(0.3)) {
            switch (rng_.below(3)) {
              case 0: return std::to_string(rng_.range(-99, 99));
              case 1: return var();
              default:
                return "arr[(" + var() + " & 15)]";
            }
        }
        if (helpers_ > 0 && depth >= 2 && rng_.chance(0.15)) {
            const int h = int(rng_.below(std::uint64_t(helpers_)));
            return "h" + std::to_string(h) + "(" + expr(depth - 1) +
                   ", " + expr(depth - 1) + ")";
        }
        static const char *ops[] = {"+", "-", "*", "&", "|", "^",
                                    "<<", ">>"};
        const char *op = ops[rng_.below(8)];
        std::string lhs = expr(depth - 1);
        std::string rhs = expr(depth - 1);
        if (std::string(op) == "<<" || std::string(op) == ">>")
            rhs = "(" + rhs + " & 7)";
        if (rng_.chance(0.15))  // guarded division
            return "(" + lhs + ") / ((" + rhs + " & 7) + 1)";
        if (rng_.chance(0.15))
            return "(" + lhs + ") % ((" + rhs + " & 7) + 2)";
        return "(" + lhs + " " + op + " " + rhs + ")";
    }

    std::string
    cond()
    {
        static const char *rel[] = {"<", "<=", ">", ">=", "==", "!="};
        return "(" + expr(2) + ") " + rel[rng_.below(6)] + " (" +
               expr(2) + ")";
    }

    void
    emitStmts(int count, int depth)
    {
        for (int s = 0; s < count; ++s) {
            switch (rng_.below(depth > 0 ? 5 : 3)) {
              case 0: {  // new local
                const std::string name =
                    "t" + std::to_string(tmpCount_++);
                line("var " + name + " = " + expr(2) + ";");
                vars_.push_back(name);
                mutables_.push_back(name);
                break;
              }
              case 1:  // assignment (never to a loop iv)
                line(mutableVar() + " = " + expr(3) + ";");
                break;
              case 2:  // array store
                line("arr[(" + var() + " & 15)] = " + expr(2) + ";");
                break;
              case 3: {  // if / if-else
                line("if (" + cond() + ") {");
                ++indent_;
                const std::size_t saved = vars_.size();
                const std::size_t msaved = mutables_.size();
                emitStmts(int(rng_.range(1, 3)), depth - 1);
                vars_.resize(saved);
                mutables_.resize(msaved);
                --indent_;
                if (rng_.chance(0.5)) {
                    line("} else {");
                    ++indent_;
                    emitStmts(int(rng_.range(1, 2)), depth - 1);
                    vars_.resize(saved);
                    mutables_.resize(msaved);
                    --indent_;
                }
                line("}");
                break;
              }
              default: {  // bounded counted loop (always terminates)
                if (loopDepth_ >= 2)
                    break;
                ++loopDepth_;
                const std::string iv =
                    "i" + std::to_string(tmpCount_++);
                line("for (var " + iv + " = 0; " + iv + " < " +
                     std::to_string(rng_.range(2, 20)) + "; " + iv +
                     " = " + iv + " + 1) {");
                ++indent_;
                const std::size_t saved = vars_.size();
                const std::size_t msaved = mutables_.size();
                vars_.push_back(iv);  // readable but never assigned
                emitStmts(int(rng_.range(1, 3)), depth - 1);
                vars_.resize(saved);
                mutables_.resize(msaved);
                --indent_;
                line("}");
                --loopDepth_;
                break;
              }
            }
        }
    }
};

class FuzzDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(FuzzDifferential, AllConfigsAgree)
{
    ProgramGen gen(std::uint64_t(GetParam()) * 2654435761u + 17);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);

    using tepic::compiler::CompileOptions;
    using tepic::compiler::compileSource;
    using tepic::compiler::OptConfig;

    tepic::sim::EmulatorConfig emu;
    emu.maxMops = 20'000'000;  // generated programs are small
    emu.recordTrace = false;
    auto run = [&](const CompileOptions &options) {
        auto compiled = compileSource(source, options);
        return tepic::sim::emulate(compiled.program, compiled.data,
                                   emu).exitValue;
    };

    CompileOptions full;  // -O2 + hoisting (defaults)
    CompileOptions no_hoist;
    no_hoist.hoist.enabled = false;
    CompileOptions o0;
    o0.opt = OptConfig::none();
    o0.hoist.enabled = false;
    CompileOptions narrow;
    narrow.machine.issueWidth = 1;
    narrow.machine.memoryUnits = 1;

    const std::int32_t reference = run(full);
    EXPECT_EQ(run(no_hoist), reference);
    EXPECT_EQ(run(o0), reference);
    EXPECT_EQ(run(narrow), reference);
}

TEST_P(FuzzDifferential, ImagesRoundTrip)
{
    ProgramGen gen(std::uint64_t(GetParam()) * 40503u + 3);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);

    tepic::core::PipelineConfig config;
    config.profileGuided = false;
    config.emulator.maxMops = 20'000'000;
    // Round-tripping needs every image but no trace or decoders.
    using tepic::core::ArtifactKind;
    const auto artifacts = tepic::core::ArtifactEngine::buildUncached(
        source,
        tepic::core::ArtifactRequest{
            ArtifactKind::kBase, ArtifactKind::kByte,
            ArtifactKind::kStream, ArtifactKind::kFull,
            ArtifactKind::kTailored},
        config);
    tepic::core::verifyRoundTrips(artifacts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range(0, 25));

class FuzzStallTiling : public ::testing::TestWithParam<int>
{
};

/**
 * The stall-cause tiling invariant must survive arbitrary penalty
 * constants and fetch configurations, not just the Table-1 defaults:
 * attribution is structural, so no CyclePenalties value may break
 *
 *   mispredict + l1Refill + decodeStage + atbMiss == stallCycles.
 */
TEST_P(FuzzStallTiling, CausesTileUnderRandomConfigs)
{
    const std::uint64_t seed =
        std::uint64_t(GetParam()) * 2246822519u + 101;
    ProgramGen gen(seed);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);

    tepic::sim::EmulatorConfig emu_config;
    emu_config.maxMops = 20'000'000;
    auto compiled = tepic::compiler::compileSource(source);
    auto emu = tepic::sim::emulate(compiled.program, compiled.data,
                                   emu_config);
    const auto base_image =
        tepic::isa::buildBaselineImage(compiled.program);
    const auto full = tepic::schemes::compressFull(compiled.program);

    Rng rng(seed ^ 0xfe7c);
    using tepic::fetch::SchemeClass;
    for (auto scheme :
         {SchemeClass::kBase, SchemeClass::kTailored,
          SchemeClass::kCompressed}) {
        auto config = tepic::fetch::FetchConfig::paper(scheme);
        config.penalties.mispredictRefill = unsigned(rng.below(10));
        config.penalties.mispredictMissBase = unsigned(rng.below(10));
        config.penalties.tailoredMissExtra = unsigned(rng.below(10));
        config.penalties.compressedMissExtra = unsigned(rng.below(10));
        config.penalties.compressedDecodeStage =
            unsigned(rng.below(10));
        config.penalties.atbMissPenalty = unsigned(rng.below(10));
        config.atbEntries = unsigned(rng.range(1, 64));
        config.l0CapacityOps = unsigned(rng.range(4, 64));
        config.busWidthBytes = 1u << rng.range(0, 4);
        config.trace.enabled = rng.below(2) == 0;

        const auto &image = scheme == SchemeClass::kCompressed
            ? full.image
            : base_image;
        const auto stats = tepic::fetch::simulateFetch(
            image, compiled.program, emu.trace, config);
        SCOPED_TRACE(tepic::fetch::schemeClassName(scheme));
        EXPECT_EQ(stats.mispredictStallCycles +
                      stats.refillStallCycles +
                      stats.decodeStallCycles + stats.atbStallCycles,
                  stats.stallCycles);
        EXPECT_EQ(stats.cycles, stats.idealCycles + stats.stallCycles);
        if (scheme != SchemeClass::kCompressed)
            EXPECT_EQ(stats.l0SavedCycles, 0u);

        // The decoded-block cache is host-side only: re-running the
        // identical configuration with a cache attached must leave
        // every architectural statistic bit-identical.
        const auto decoder = scheme == SchemeClass::kCompressed
            ? tepic::codec::makeDecoder(full)
            : tepic::codec::makeBaseDecoder(base_image);
        tepic::codec::DecodedBlockCache cache(*decoder);
        auto cached_config = config;
        cached_config.decodedBlocks = &cache;
        const auto cached = tepic::fetch::simulateFetch(
            image, compiled.program, emu.trace, cached_config);
        EXPECT_EQ(cached.cycles, stats.cycles);
        EXPECT_EQ(cached.idealCycles, stats.idealCycles);
        EXPECT_EQ(cached.stallCycles, stats.stallCycles);
        EXPECT_EQ(cached.mispredictStallCycles,
                  stats.mispredictStallCycles);
        EXPECT_EQ(cached.refillStallCycles, stats.refillStallCycles);
        EXPECT_EQ(cached.decodeStallCycles, stats.decodeStallCycles);
        EXPECT_EQ(cached.atbStallCycles, stats.atbStallCycles);
        EXPECT_EQ(cached.l0SavedCycles, stats.l0SavedCycles);
        EXPECT_EQ(cached.busBitFlips, stats.busBitFlips);
        EXPECT_EQ(cached.bytesTransferred, stats.bytesTransferred);
        EXPECT_EQ(cached.linesTransferred, stats.linesTransferred);
        EXPECT_EQ(cached.l1Hits, stats.l1Hits);
        EXPECT_EQ(cached.l1Misses, stats.l1Misses);
        EXPECT_EQ(cached.l0Hits, stats.l0Hits);
        EXPECT_EQ(cached.l0Misses, stats.l0Misses);
        EXPECT_EQ(cached.atbHits, stats.atbHits);
        EXPECT_EQ(cached.atbMisses, stats.atbMisses);
        EXPECT_EQ(cached.predictionsCorrect,
                  stats.predictionsCorrect);
        EXPECT_EQ(cached.predictionsWrong, stats.predictionsWrong);
        EXPECT_EQ(cached.blocksFetched, stats.blocksFetched);
        EXPECT_EQ(cached.opsDelivered, stats.opsDelivered);
        // And the cache itself must have decoded each touched static
        // block exactly once: misses are bounded by the static block
        // count while hits+misses count every dynamic fetch.
        EXPECT_LE(cache.misses(), cache.size());
        EXPECT_EQ(cache.hits() + cache.misses(),
                  stats.blocksFetched);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStallTiling,
                         ::testing::Range(0, 10));

class FuzzSizeTiling : public ::testing::TestWithParam<int>
{
};

/**
 * The size-provenance tiling invariant must survive arbitrary stream
 * cuts, not just the six committed configurations: for any random
 * partition of the 40-bit op into streams, every scheme's ledger
 * leaves (and the ATT's) must still sum to the artifact size exactly.
 */
TEST_P(FuzzSizeTiling, LedgersTileUnderRandomStreamCuts)
{
    const std::uint64_t seed =
        std::uint64_t(GetParam()) * 2654435761u + 977;
    ProgramGen gen(seed);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);

    auto compiled = tepic::compiler::compileSource(source);
    const auto &program = compiled.program;

    auto expect_tiles = [](const tepic::isa::Image &image) {
        SCOPED_TRACE(image.scheme);
        EXPECT_FALSE(image.ledger.empty());
        EXPECT_EQ(image.ledger.totalBits(), image.bitSize);
    };

    const auto base = tepic::isa::buildBaselineImage(program);
    expect_tiles(base);
    expect_tiles(tepic::schemes::compressByte(program).image);
    const auto full = tepic::schemes::compressFull(program);
    expect_tiles(full.image);
    const auto tailored =
        tepic::schemes::TailoredIsa::build(program).encode(program);
    expect_tiles(tailored);

    const auto att = tepic::fetch::Att::build(full.image, program);
    EXPECT_EQ(att.ledger().totalBits(), att.totalBits());

    // Random stream cuts: partition the 40 op bits into 2..6 streams
    // of random widths summing to exactly kOpBits.
    Rng rng(seed ^ 0x51ce);
    for (int cut = 0; cut < 3; ++cut) {
        tepic::schemes::StreamConfig config;
        config.name = "fuzz" + std::to_string(cut);
        unsigned remaining = tepic::isa::kOpBits;
        const unsigned streams = unsigned(rng.range(2, 6));
        for (unsigned s = 0; s + 1 < streams; ++s) {
            const unsigned max_width =
                remaining - (streams - 1 - s);  // >=1 bit per stream
            const unsigned width = unsigned(
                rng.range(1, std::int64_t(std::min(max_width, 20u))));
            config.widths.push_back(width);
            remaining -= width;
        }
        config.widths.push_back(remaining);
        SCOPED_TRACE(config.name + " streams=" +
                     std::to_string(streams));
        expect_tiles(
            tepic::schemes::compressStream(program, config).image);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSizeTiling,
                         ::testing::Range(0, 8));

class FuzzCacheTiling : public ::testing::TestWithParam<int>
{
};

/**
 * The 3C classification must tile L1 misses exactly for arbitrary
 * cache geometries and sampling configurations, the recorder's
 * counters must agree with the simulator's own, and attaching the
 * recorder must be architecturally invisible.
 */
TEST_P(FuzzCacheTiling, ThreeCTilesUnderRandomGeometries)
{
    const std::uint64_t seed =
        std::uint64_t(GetParam()) * 2654435761u + 77;
    ProgramGen gen(seed);
    const std::string source = gen.generate();
    SCOPED_TRACE(source);

    tepic::sim::EmulatorConfig emu_config;
    emu_config.maxMops = 20'000'000;
    auto compiled = tepic::compiler::compileSource(source);
    auto emu = tepic::sim::emulate(compiled.program, compiled.data,
                                   emu_config);
    const auto base_image =
        tepic::isa::buildBaselineImage(compiled.program);
    const auto full = tepic::schemes::compressFull(compiled.program);

    Rng rng(seed ^ 0x3c3c);
    using tepic::fetch::SchemeClass;
    for (auto scheme :
         {SchemeClass::kBase, SchemeClass::kTailored,
          SchemeClass::kCompressed}) {
        SCOPED_TRACE(tepic::fetch::schemeClassName(scheme));
        auto config = tepic::fetch::FetchConfig::paper(scheme);
        config.cache.sets = 1u << rng.range(0, 5);
        config.cache.ways = 1u << rng.range(0, 2);
        config.cache.lineBytes = 8u << rng.range(0, 3);
        config.atbEntries = unsigned(rng.range(1, 64));
        config.l0CapacityOps = unsigned(rng.range(4, 64));
        config.cacheStats.enabled = true;
        config.cacheStats.heatmapEpochs = unsigned(rng.range(1, 32));
        config.cacheStats.reuseSampleEvery = rng.range(1, 8);

        const auto &image = scheme == SchemeClass::kCompressed
            ? full.image
            : base_image;
        const auto stats = tepic::fetch::simulateFetch(
            image, compiled.program, emu.trace, config);

#if TEPIC_CACHESTATS_ENABLED
        const auto &cs = stats.cacheStats;
        ASSERT_TRUE(cs.recorded);
        cs.assertTiling();
        EXPECT_EQ(cs.misses,
                  cs.compulsory + cs.capacity + cs.conflict);
        EXPECT_EQ(cs.fetches, stats.blocksFetched);
        EXPECT_EQ(cs.l0Bypasses, stats.l0Hits);
        EXPECT_EQ(cs.misses, stats.l1Misses);
        EXPECT_EQ(cs.hits, stats.l1Hits - stats.l0Hits);
        EXPECT_EQ(cs.atbHits, stats.atbHits);
        EXPECT_EQ(cs.atbMisses, stats.atbMisses);
        // A 1-set cache is fully associative: its shadow twin can
        // never disagree with it, so nothing classifies as conflict.
        if (config.cache.sets == 1)
            EXPECT_EQ(cs.conflict, 0u);
#else
        EXPECT_FALSE(stats.cacheStats.recorded);
#endif

        // Recording must not move a single architectural counter.
        auto off_config = config;
        off_config.cacheStats.enabled = false;
        const auto off = tepic::fetch::simulateFetch(
            image, compiled.program, emu.trace, off_config);
        EXPECT_EQ(off.cycles, stats.cycles);
        EXPECT_EQ(off.stallCycles, stats.stallCycles);
        EXPECT_EQ(off.l1Hits, stats.l1Hits);
        EXPECT_EQ(off.l1Misses, stats.l1Misses);
        EXPECT_EQ(off.l0Hits, stats.l0Hits);
        EXPECT_EQ(off.atbHits, stats.atbHits);
        EXPECT_EQ(off.atbMisses, stats.atbMisses);
        EXPECT_EQ(off.busBitFlips, stats.busBitFlips);
        EXPECT_EQ(off.bytesTransferred, stats.bytesTransferred);
        EXPECT_EQ(off.predictionsWrong, stats.predictionsWrong);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCacheTiling,
                         ::testing::Range(0, 8));

} // namespace
