/**
 * @file
 * Design-space sweep tests: Pareto dominance on hand-traced fixtures,
 * grid expansion order, configuration normalization, and the driver's
 * determinism contract (the structure section is byte-identical for
 * any jobs value; the front is invariant under input order).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/artifact_engine.hh"
#include "core/sweep.hh"
#include "fetch/fetch_sim.hh"
#include "support/sweep.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using support::sweep::Objective;
using support::sweep::Point;
using support::sweep::Sense;

// The objective space of the driver: size (min), IPC (max), decoder
// transistors (min), bus bit flips (min).
std::vector<Objective>
axes()
{
    return {{"size", Sense::kMin},
            {"ipc", Sense::kMax},
            {"decoder", Sense::kMin},
            {"flips", Sense::kMin}};
}

// Hand-traced trio: each point holds at least one best axis, so none
// dominates another (mirrored by the tools/test_tepic_sweep.py
// fixture).
//   base        (32000, 800000,   0, 5000)  best decoder
//   compressed  (20000, 727272, 400, 3000)  best size + flips
//   tailored    (24000, 842105, 150, 4000)  best IPC
std::vector<Point>
trio()
{
    return {{"base", {32000, 800000, 0, 5000}},
            {"compressed", {20000, 727272, 400, 3000}},
            {"tailored", {24000, 842105, 150, 4000}}};
}

TEST(SweepDominance, HandTraced)
{
    const auto objs = axes();
    const Point better{"a", {100, 900, 10, 50}};
    const Point worse{"b", {120, 900, 10, 50}};      // larger size
    const Point slower{"c", {100, 800, 10, 50}};     // less IPC
    const Point elsewhere{"d", {90, 950, 20, 50}};   // trades axes

    EXPECT_TRUE(support::sweep::dominates(better, worse, objs));
    EXPECT_FALSE(support::sweep::dominates(worse, better, objs));
    EXPECT_TRUE(support::sweep::dominates(better, slower, objs));
    // d is smaller and faster but needs a bigger decoder: no relation.
    EXPECT_FALSE(support::sweep::dominates(better, elsewhere, objs));
    EXPECT_FALSE(support::sweep::dominates(elsewhere, better, objs));
}

TEST(SweepDominance, EqualPointsDoNotDominate)
{
    const auto objs = axes();
    const Point a{"a", {100, 900, 10, 50}};
    const Point b{"b", {100, 900, 10, 50}};
    EXPECT_FALSE(support::sweep::dominates(a, b, objs));
    EXPECT_FALSE(support::sweep::dominates(b, a, objs));

    // Both survive to the front (ordered by key as the tie-break).
    const auto front = support::sweep::paretoFront({a, b}, objs);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0], 0u);
    EXPECT_EQ(front[1], 1u);
}

TEST(SweepFront, HandTracedTrio)
{
    const auto points = trio();
    const auto front = support::sweep::paretoFront(points, axes());
    // All three are Pareto-optimal; dominance order sorts by the
    // oriented tuple, so the smallest image comes first.
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(points[front[0]].key, "compressed");
    EXPECT_EQ(points[front[1]].key, "tailored");
    EXPECT_EQ(points[front[2]].key, "base");
}

TEST(SweepFront, DegradedPointDropsOff)
{
    auto points = trio();
    // Degrade tailored until compressed beats it on every axis.
    points[2].values = {24000, 666666, 500, 6000};
    const auto front = support::sweep::paretoFront(points, axes());
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(points[front[0]].key, "compressed");
    EXPECT_EQ(points[front[1]].key, "base");
}

TEST(SweepFront, InvariantUnderInputOrder)
{
    // A pseudo-random cloud with a deterministic seed; the front's
    // *keys* must be identical however the input is permuted.
    std::mt19937 rng(1234);
    std::vector<Point> points;
    for (int i = 0; i < 40; ++i) {
        points.push_back({"p" + std::to_string(i),
                          {std::int64_t(rng() % 1000),
                           std::int64_t(rng() % 1000),
                           std::int64_t(rng() % 100),
                           std::int64_t(rng() % 500)}});
    }
    const auto objs = axes();
    const auto frontKeys = [&](const std::vector<Point> &pts) {
        std::vector<std::string> keys;
        for (std::size_t idx : support::sweep::paretoFront(pts, objs))
            keys.push_back(pts[idx].key);
        return keys;
    };
    const auto reference = frontKeys(points);
    EXPECT_GE(reference.size(), 1u);
    for (int round = 0; round < 5; ++round) {
        std::shuffle(points.begin(), points.end(), rng);
        EXPECT_EQ(frontKeys(points), reference);
    }
}

TEST(SweepGridExpansion, RowMajorOrder)
{
    const auto grid = support::sweep::expandGrid({2, 3});
    ASSERT_EQ(grid.size(), 6u);
    // Last dimension varies fastest.
    EXPECT_EQ(grid[0], (std::vector<std::size_t>{0, 0}));
    EXPECT_EQ(grid[1], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(grid[2], (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(grid[3], (std::vector<std::size_t>{1, 0}));
    EXPECT_EQ(grid[5], (std::vector<std::size_t>{1, 2}));

    EXPECT_TRUE(support::sweep::expandGrid({2, 0, 3}).empty());
    const auto none = support::sweep::expandGrid({});
    ASSERT_EQ(none.size(), 1u);
    EXPECT_TRUE(none[0].empty());
}

TEST(SweepConfig, KeySpellsEveryDimension)
{
    core::sweep::SweepConfig config;
    config.scheme = fetch::SchemeClass::kCompressed;
    config.sets = 128;
    config.ways = 4;
    config.lineBytes = 64;
    config.l0Ops = 16;
    config.atbEntries = 32;
    config.predictor = fetch::PredictorKind::kGshare;
    config.penaltyProfile = "slowmem";
    EXPECT_EQ(config.key(),
              "compressed@S128xW4xL64/l0:16/atb:32/p:gshare"
              "/pen:slowmem");
}

TEST(SweepConfig, ExpansionNormalizesL0AndDedups)
{
    core::sweep::SweepGrid grid;
    grid.l0CapacityOps = {16, 32};
    // base and tailored have no L0 buffer: their two l0 values
    // collapse to one l0:0 config each; compressed keeps both.
    const auto configs = core::sweep::expandConfigs(grid);
    ASSERT_EQ(configs.size(), 4u);
    std::size_t compressed = 0;
    for (const auto &config : configs) {
        if (config.scheme == fetch::SchemeClass::kCompressed)
            ++compressed;
        else
            EXPECT_EQ(config.l0Ops, 0u) << config.key();
    }
    EXPECT_EQ(compressed, 2u);
}

TEST(SweepConfig, PenaltyProfilesAreDistinct)
{
    const auto &paper = core::sweep::penaltyProfileByName("paper");
    const auto &slow = core::sweep::penaltyProfileByName("slowmem");
    const auto &deep = core::sweep::penaltyProfileByName("deeppipe");
    EXPECT_LT(paper.penalties.mispredictMissBase,
              slow.penalties.mispredictMissBase);
    EXPECT_LT(paper.penalties.compressedDecodeStage,
              deep.penalties.compressedDecodeStage);
}

TEST(SweepDriver, CiGridMeetsTheFloor)
{
    const auto configs = core::sweep::expandConfigs(
        core::sweep::SweepGrid::ci());
    EXPECT_GE(configs.size(), 200u);  // the CI gate's floor
}

TEST(SweepDriver, StructureByteIdenticalAcrossJobs)
{
    core::ArtifactEngine engine(1);
    core::sweep::SweepOptions options;
    options.grid.workloads = {"fir"};
    options.grid.cacheSets = {128, 256};
    options.grid.cacheWays = {1, 2};

    options.jobs = 1;
    const auto serial = core::sweep::runSweep(engine, options);
    options.jobs = 8;
    const auto fanned = core::sweep::runSweep(engine, options);

    EXPECT_EQ(core::sweep::structureJson(serial),
              core::sweep::structureJson(fanned));
    EXPECT_EQ(serial.points.size(),
              options.grid.workloads.size() * serial.configs.size());
}

TEST(SweepDriver, PointMatchesDirectSimulation)
{
    core::ArtifactEngine engine(1);
    core::sweep::SweepOptions options;
    options.grid.workloads = {"fir"};
    options.grid.schemes = {fetch::SchemeClass::kBase};
    const auto result = core::sweep::runSweep(engine, options);
    ASSERT_EQ(result.points.size(), 1u);
    const auto &point = result.points[0];

    // Re-run the same point by hand: same image, same trace, same
    // FetchConfig — the sweep must be a plain fan-out of simulateFetch.
    const auto artifacts = engine.build(
        workloads::workloadByName("fir").source,
        core::ArtifactRequest{core::ArtifactKind::kTrace,
                              core::ArtifactKind::kBase});
    const fetch::FetchStats direct = fetch::simulateFetch(
        artifacts->baseImage(), artifacts->compiled.program,
        artifacts->trace(), point.config.fetchConfig(true));

    EXPECT_EQ(point.metrics.sizeBits, artifacts->baseImage().bitSize);
    EXPECT_EQ(point.metrics.cycles, direct.cycles);
    EXPECT_EQ(point.metrics.stallCycles, direct.stallCycles);
    EXPECT_EQ(point.metrics.busBitFlips, direct.busBitFlips);
    EXPECT_EQ(point.metrics.l1Misses, direct.l1Misses);
    EXPECT_EQ(point.metrics.decoderTransistors, 0u);  // base decodes
                                                      // for free
    // The exact stall tiling the validator re-derives.
    EXPECT_EQ(point.metrics.mispredictStall + point.metrics.refillStall
                  + point.metrics.decodeStall + point.metrics.atbStall,
              point.metrics.stallCycles);
    EXPECT_EQ(point.metrics.idealCycles + point.metrics.stallCycles,
              point.metrics.cycles);
}

TEST(SweepDriver, AggregatesSumWorkloadPoints)
{
    core::ArtifactEngine engine(1);
    core::sweep::SweepOptions options;
    options.grid.workloads = {"fir", "matmul"};
    const auto result = core::sweep::runSweep(engine, options);

    for (const auto &aggregate : result.aggregates) {
        EXPECT_EQ(aggregate.workloadCount, 2u);
        std::uint64_t cycles = 0, size = 0, flips = 0;
        for (const auto &point : result.points) {
            if (point.config.key() != aggregate.key)
                continue;
            cycles += point.metrics.cycles;
            size += point.metrics.sizeBits;
            flips += point.metrics.busBitFlips;
        }
        EXPECT_EQ(aggregate.cycles, cycles) << aggregate.key;
        EXPECT_EQ(aggregate.sizeBits, size) << aggregate.key;
        EXPECT_EQ(aggregate.busBitFlips, flips) << aggregate.key;
    }

    // Front members are aggregate indices in dominance order: every
    // index valid, no duplicates, none dominated by any aggregate.
    std::vector<support::sweep::Point> cloud;
    for (const auto &aggregate : result.aggregates)
        cloud.push_back(core::sweep::aggregatePoint(aggregate));
    const auto expect =
        support::sweep::paretoFront(cloud, core::sweep::objectives());
    EXPECT_EQ(result.front, expect);
}

} // namespace
