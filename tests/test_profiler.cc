/**
 * @file
 * Tests for support::prof — the host-performance profiler. Covers
 * the scoped phase attribution (self-time, nesting), the tiling
 * invariant (Σ phase cycles == total, like the SizeLedger tiles an
 * image's bits), the tepic-prof-v1 report, the determinism contract
 * (work counters and key sets identical for any --jobs value), and
 * the sampling profiler's collapsed-stack output.
 *
 * The whole suite compiles in both configurations: under
 * -DTEPIC_ENABLE_TRACING=OFF the profiler folds to no-op stubs and
 * the *Disabled tests assert exactly that (ProfScope is an empty
 * class, reports come back all-zero with source "disabled").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <type_traits>

#include "core/artifact_engine.hh"
#include "json_mini.hh"
#include "support/metrics.hh"
#include "support/profiler.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using support::prof::Phase;
using support::prof::ProfScope;

/** Burn roughly @p ms milliseconds of this thread's CPU time. */
std::uint64_t
spinCpu(unsigned ms)
{
    const std::uint64_t start = support::prof::threadCpuNowNs();
    const std::uint64_t target =
        start + std::uint64_t(ms) * 1'000'000ull;
    std::uint64_t acc = 1469598103934665603ull;
    while (support::prof::threadCpuNowNs() < target) {
        for (int i = 0; i < 4096; ++i) {
            acc ^= std::uint64_t(i);
            acc *= 1099511628211ull;
        }
    }
    return acc;
}

std::uint64_t
phaseCycleSum(const support::prof::Snapshot &snap)
{
    std::uint64_t sum = 0;
    for (unsigned p = 0; p < support::prof::kNumPhases; ++p)
        sum += snap.phases[p].cycles;
    return sum;
}

TEST(ProfilerPhaseNames, CoverTheClosedEnum)
{
    // The report's phase key set is the full enum — a closed, always-
    // emitted set is what makes PROF key sets --jobs-deterministic.
    for (unsigned p = 0; p < support::prof::kNumPhases; ++p) {
        const char *name = support::prof::phaseName(Phase(p));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

#if TEPIC_PROFILING_ENABLED

TEST(Profiler, ScopeChargesItsPhase)
{
    support::prof::resetForTest();
    support::prof::startSession();
    {
        ProfScope scope(Phase::kFrontend);
        spinCpu(5);
    }
    const auto snap = support::prof::snapshot();
    const auto &fe = snap.phases[unsigned(Phase::kFrontend)];
    EXPECT_EQ(fe.enters, 1u);
    EXPECT_GT(fe.cycles, 0u);
    EXPECT_GT(fe.cpuNs, 0u);
    // Untouched phases stay zero-entered (but still reported).
    EXPECT_EQ(snap.phases[unsigned(Phase::kFetchSim)].enters, 0u);
}

TEST(Profiler, NestedScopesAttributeSelfTime)
{
    support::prof::resetForTest();
    support::prof::startSession();
    {
        ProfScope outer(Phase::kBackend);
        spinCpu(4);
        {
            ProfScope inner(Phase::kOptimise);
            spinCpu(12);
        }
        spinCpu(4);
    }
    const auto snap = support::prof::snapshot();
    const auto &outer = snap.phases[unsigned(Phase::kBackend)];
    const auto &inner = snap.phases[unsigned(Phase::kOptimise)];
    EXPECT_EQ(outer.enters, 1u);
    EXPECT_EQ(inner.enters, 1u);
    // Self-time: the inner 12 ms belong to kOptimise alone; kBackend
    // keeps only its own ~8 ms. Generous bounds — CI timers jitter.
    EXPECT_GT(inner.cpuNs, outer.cpuNs);
    // No double counting: the two phases plus scope overhead must not
    // exceed the session's wall CPU (tiling catches inflation).
    EXPECT_EQ(snap.total.cycles, phaseCycleSum(snap));
}

TEST(Profiler, PhasesTileTheTotal)
{
    support::prof::resetForTest();
    support::prof::startSession();
    {
        ProfScope a(Phase::kEmulate);
        spinCpu(3);
    }
    spinCpu(3);  // unscoped work -> Phase::kOther
    {
        ProfScope b(Phase::kFetchSim);
        spinCpu(3);
    }
    const auto snap = support::prof::snapshot();
    EXPECT_EQ(snap.total.cycles, phaseCycleSum(snap));
    EXPECT_GT(snap.phases[unsigned(Phase::kOther)].cycles, 0u)
        << "unscoped session-thread time must land in kOther";
}

TEST(Profiler, ReportJsonIsValidAndTiles)
{
    support::prof::resetForTest();
    support::prof::startSession();
    {
        ProfScope scope(Phase::kBenchKernel);
        spinCpu(5);
    }
    support::MetricsRegistry metrics;
    metrics.addCounter("prof.work.ops_encoded", 1234);
    metrics.setGauge("prof.ops_encoded_per_sec", 456.0);
    metrics.setGauge("fig05.ratio", 0.5);  // non-prof: excluded
    const std::string json =
        support::prof::reportJson("test_bin", metrics);

    const auto doc = testjson::parse(json);
    EXPECT_EQ(doc.at("schema").str, "tepic-prof-v1");
    EXPECT_EQ(doc.at("name").str, "test_bin");
    const std::string source = doc.at("source").str;
    EXPECT_TRUE(source == "perf_event" || source == "thread_cputime")
        << source;
    EXPECT_EQ(doc.at("phases").object.size(),
              std::size_t(support::prof::kNumPhases));
    double tiled = 0.0;
    for (const auto &[name, phase] : doc.at("phases").object)
        tiled += phase.at("cycles").number;
    EXPECT_DOUBLE_EQ(tiled, doc.at("total").at("cycles").number);
    // prof.work.* counters surface (prefix stripped); prof gauges
    // surface under throughput; foreign gauges stay out.
    EXPECT_DOUBLE_EQ(doc.at("work").at("ops_encoded").number, 1234.0);
    EXPECT_DOUBLE_EQ(
        doc.at("throughput").at("ops_encoded_per_sec").number, 456.0);
    EXPECT_FALSE(doc.at("throughput").has("fig05.ratio"));
}

TEST(Profiler, WorkCountersAreJobsInvariant)
{
    // The acceptance contract: identical builds must charge identical
    // prof.work.* regardless of engine parallelism. Two private
    // engines (separate caches -> both do the full build) with
    // different jobs counts must add the same ops_encoded delta.
    auto &m = support::MetricsRegistry::global();
    const auto &source = workloads::workloadByName("fir").source;
    const auto request = core::ArtifactRequest::parse("base,byte");

    const std::uint64_t before1 = m.counter("prof.work.ops_encoded");
    {
        core::ArtifactEngine engine(1);
        engine.build(source, request, {});
    }
    const std::uint64_t after1 = m.counter("prof.work.ops_encoded");
    {
        core::ArtifactEngine engine(4);
        engine.build(source, request, {});
    }
    const std::uint64_t after4 = m.counter("prof.work.ops_encoded");

    const std::uint64_t delta1 = after1 - before1;
    const std::uint64_t delta4 = after4 - after1;
    EXPECT_GT(delta1, 0u);
    EXPECT_EQ(delta1, delta4);
}

TEST(Profiler, SamplingProducesCollapsedStacks)
{
    support::prof::resetForTest();
    support::prof::startSession();
    ASSERT_TRUE(support::prof::startSampling(2000));
    EXPECT_FALSE(support::prof::startSampling(2000))
        << "second sampler must be refused";
    {
        ProfScope scope(Phase::kBenchKernel);
        spinCpu(250);
    }
    support::prof::stopSampling();
    const auto snap = support::prof::snapshot();
    EXPECT_GE(snap.samplesTaken, 1u)
        << "250 ms of CPU at 2 kHz must catch at least one sample";
    const std::string collapsed = support::prof::collapsedStacks();
    ASSERT_FALSE(collapsed.empty());
    // Every line is "frame;frame;... count".
    std::size_t start = 0;
    while (start < collapsed.size()) {
        std::size_t end = collapsed.find('\n', start);
        if (end == std::string::npos)
            end = collapsed.size();
        const std::string line = collapsed.substr(start, end - start);
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::strtoull(line.c_str() + space + 1, nullptr, 10),
                  0u)
            << line;
        start = end + 1;
    }
}

#else // !TEPIC_PROFILING_ENABLED

TEST(ProfilerDisabled, ScopeIsAnEmptyClass)
{
    // The whole point of the kill switch: zero footprint.
    EXPECT_TRUE(std::is_empty_v<ProfScope>);
    EXPECT_FALSE(support::prof::available());
    EXPECT_FALSE(support::prof::startSampling());
    EXPECT_TRUE(support::prof::collapsedStacks().empty());
}

TEST(ProfilerDisabled, ReportIsStubButValid)
{
    support::MetricsRegistry metrics;
    metrics.addCounter("prof.work.ops_encoded", 7);
    const std::string json =
        support::prof::reportJson("stub_bin", metrics);
    const auto doc = testjson::parse(json);
    EXPECT_EQ(doc.at("schema").str, "tepic-prof-v1");
    EXPECT_EQ(doc.at("source").str, "disabled");
    EXPECT_DOUBLE_EQ(doc.at("total").at("cycles").number, 0.0);
    EXPECT_EQ(doc.at("phases").object.size(),
              std::size_t(support::prof::kNumPhases));
    // Deterministic work counters still surface in the stub report.
    EXPECT_DOUBLE_EQ(doc.at("work").at("ops_encoded").number, 7.0);
}

#endif // TEPIC_PROFILING_ENABLED

} // namespace
