/**
 * @file
 * Tests for the size-provenance subsystem: SizeLedger semantics
 * (charging, merging, export, treemap JSON), the tiling invariant on
 * every scheme the pipeline builds (leaf bits sum to the image size
 * exactly, ATT included), the per-function layout rollup, and the
 * determinism contract (jobs=1 and jobs=8 produce bit-identical
 * SIZE report JSON).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "asmgen/layout.hh"
#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "json_mini.hh"
#include "support/metrics.hh"
#include "support/size_ledger.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using support::SizeLedger;

TEST(SizeLedger, ChargesAccumulateAndZeroChargesDrop)
{
    SizeLedger ledger;
    EXPECT_TRUE(ledger.empty());
    ledger.addBits("code/payload", 10);
    ledger.addBits("code/payload", 5);
    ledger.addBits("code/overhead", 0);  // dropped, not a leaf
    ledger.addBits("align_pad", 3);
    EXPECT_EQ(ledger.totalBits(), 18u);
    EXPECT_EQ(ledger.leafBits("code/payload"), 15u);
    EXPECT_EQ(ledger.leafBits("code/overhead"), 0u);
    EXPECT_EQ(ledger.leaves().size(), 2u);
    ledger.assertTiles(18, "unit");
    ledger.clear();
    EXPECT_TRUE(ledger.empty());
}

TEST(SizeLedger, MergeIsAssociativeAndCommutative)
{
    auto make = [](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        SizeLedger ledger;
        ledger.addBits("x/a", a);
        ledger.addBits("x/b", b);
        ledger.addBits("y", c);
        return ledger;
    };
    const auto l1 = make(1, 2, 3);
    const auto l2 = make(10, 0, 30);
    const auto l3 = make(100, 200, 0);

    SizeLedger ab = l1;
    ab.merge(l2);
    SizeLedger ab_c = ab;
    ab_c.merge(l3);

    SizeLedger bc = l2;
    bc.merge(l3);
    SizeLedger a_bc = l1;
    a_bc.merge(bc);

    SizeLedger ba = l2;
    ba.merge(l1);

    EXPECT_EQ(ab_c.leaves(), a_bc.leaves());
    EXPECT_EQ(ab.leaves(), ba.leaves());
    EXPECT_EQ(ab_c.totalBits(),
              l1.totalBits() + l2.totalBits() + l3.totalBits());
}

TEST(SizeLedger, ExportRendersCounterNamespace)
{
    SizeLedger ledger;
    ledger.addBits("code/payload", 40);
    ledger.addBits("align_pad", 2);
    support::MetricsRegistry metrics;
    ledger.exportTo(metrics, "size.huff-byte");
    EXPECT_EQ(metrics.counter("size.huff-byte.code.payload"), 40u);
    EXPECT_EQ(metrics.counter("size.huff-byte.align_pad"), 2u);
    EXPECT_EQ(metrics.counter("size.huff-byte.total_bits"), 42u);
}

TEST(SizeLedger, TreemapJsonNestsAndSumsToTotal)
{
    SizeLedger ledger;
    ledger.addBits("stream/s0_b0_w9/payload", 100);
    ledger.addBits("stream/s0_b0_w9/overhead", 7);
    ledger.addBits("stream/s1_b9_w10/payload", 50);
    ledger.addBits("align_pad", 5);

    const auto doc = testjson::parse(ledger.toJson());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("align_pad").number, 5.0);
    const auto &s0 = doc.at("stream").at("s0_b0_w9");
    EXPECT_EQ(s0.at("payload").number, 100.0);
    EXPECT_EQ(s0.at("overhead").number, 7.0);
    EXPECT_EQ(doc.at("stream").at("s1_b9_w10").at("payload").number,
              50.0);
}

class SizeTiling : public ::testing::Test
{
  protected:
    static const core::Artifacts &
    artifacts()
    {
        static const core::Artifacts instance = [] {
            core::PipelineConfig config;
            return core::ArtifactEngine::buildUncached(
                workloads::workloadByName("fir").source,
                core::ArtifactRequest::all(), config);
        }();
        return instance;
    }
};

TEST_F(SizeTiling, EveryBuiltSchemeTilesExactly)
{
    const auto entries = core::collectSizeLedgers(artifacts());
    // base + byte + 6 streams + full + tailored + att.
    ASSERT_EQ(entries.size(), 11u);
    for (const auto &entry : entries) {
        SCOPED_TRACE(entry.scheme);
        ASSERT_NE(entry.ledger, nullptr);
        EXPECT_FALSE(entry.ledger->empty());
        EXPECT_EQ(entry.ledger->totalBits(), entry.totalBits);
        if (entry.image != nullptr)
            EXPECT_EQ(entry.totalBits, entry.image->bitSize);
    }
    // The sizes the fig05/fig07 gauges are computed from are these
    // same image.bitSize / Att::totalBits() values: tie them to the
    // checked accessors explicitly.
    const auto &a = artifacts();
    EXPECT_EQ(a.baseImage().ledger.totalBits(), a.baseImage().bitSize);
    EXPECT_EQ(a.fullImage().image.ledger.totalBits(),
              a.fullImage().image.bitSize);
    EXPECT_EQ(a.tailoredImage().ledger.totalBits(),
              a.tailoredImage().bitSize);
    EXPECT_EQ(a.att().ledger().totalBits(), a.att().totalBits());
}

TEST_F(SizeTiling, AttLedgerSplitsPerEntryMetadata)
{
    const auto &att = artifacts().att();
    const auto &leaves = att.ledger().leaves();
    ASSERT_EQ(leaves.size(), 4u);
    EXPECT_TRUE(leaves.count("entry/addr"));
    EXPECT_TRUE(leaves.count("entry/line_count"));
    EXPECT_TRUE(leaves.count("entry/mop_count"));
    EXPECT_TRUE(leaves.count("entry/next_pc"));
}

TEST_F(SizeTiling, MetricsExportMatchesLedgers)
{
    support::MetricsRegistry metrics;
    core::recordSizeMetrics(artifacts(), metrics);
    for (const auto &entry : core::collectSizeLedgers(artifacts())) {
        SCOPED_TRACE(entry.scheme);
        const std::string prefix = "size." + entry.scheme;
        EXPECT_EQ(metrics.counter(prefix + ".total_bits"),
                  entry.totalBits);
        // The exported leaves must themselves tile the exported
        // total: sum every counter under the prefix except
        // total_bits itself.
        std::uint64_t leaf_sum = 0;
        for (const auto &name : metrics.counterNames()) {
            if (name.rfind(prefix + ".", 0) == 0 &&
                name != prefix + ".total_bits")
                leaf_sum += metrics.counter(name);
        }
        EXPECT_EQ(leaf_sum, entry.totalBits);
    }
    // Codeword-length distributions ride along for every Huffman
    // alphabet (byte, six streams, full = 8 histograms).
    EXPECT_GT(metrics.histogram("size.huff-byte.codelen").total(), 0u);
    EXPECT_GT(metrics.histogram("size.huff-full.codelen").total(), 0u);
}

TEST_F(SizeTiling, LayoutRollupTilesEveryImage)
{
    const auto &a = artifacts();
    std::vector<std::string> function_names;
    for (const auto &fn : a.compiled.emitted.functions)
        function_names.push_back(fn.name);

    for (const auto &entry : core::collectSizeLedgers(a)) {
        if (entry.image == nullptr)
            continue;
        SCOPED_TRACE(entry.scheme);
        const auto rollup = asmgen::imageLayoutRollup(
            *entry.image, a.compiled.blockSource, function_names);
        EXPECT_EQ(rollup.totalBits(), entry.image->bitSize);
        EXPECT_GT(rollup.leafBits("func/main/b0"), 0u);
    }
}

TEST(SizeReport, JsonIsDeterministicAcrossJobs)
{
    const auto &fir = workloads::workloadByName("fir");
    const auto &matmul = workloads::workloadByName("matmul");
    const core::BuildRequest req_fir{fir.source,
                                     core::ArtifactRequest::all(), {}};
    const core::BuildRequest req_matmul{
        matmul.source, core::ArtifactRequest::all(), {}};

    auto report = [&](unsigned jobs) {
        core::ArtifactEngine engine(jobs);
        const auto built = engine.buildMany({req_fir, req_matmul});
        return core::sizeReportJson(
            "determinism",
            {{"fir", built[0].get()}, {"matmul", built[1].get()}});
    };
    const std::string serial = report(1);
    const std::string parallel = report(8);
    EXPECT_EQ(serial, parallel);  // bit-identical, not just equal size

    // And the report is well-formed tepic-size-v1 whose per-scheme
    // totals match the tree leaves.
    const auto doc = testjson::parse(serial);
    EXPECT_EQ(doc.at("schema").str, "tepic-size-v1");
    const auto &schemes =
        doc.at("workloads").at("fir").at("schemes").object;
    EXPECT_EQ(schemes.size(), 11u);
    for (const auto &[scheme, body] : schemes) {
        SCOPED_TRACE(scheme);
        std::function<double(const testjson::Value &)> sum =
            [&](const testjson::Value &node) {
                if (node.isNumber())
                    return node.number;
                double total = 0.0;
                for (const auto &[key, child] : node.object)
                    total += sum(child);
                return total;
            };
        EXPECT_EQ(sum(body.at("tree")),
                  body.at("total_bits").number);
        if (body.has("by_function")) {
            EXPECT_EQ(sum(body.at("by_function")),
                      body.at("total_bits").number);
        }
    }
}

} // namespace
