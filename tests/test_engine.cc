/**
 * @file
 * Tests for the parallel artifact engine: cache semantics (pointer
 * equality as the hit witness, superset entries satisfying subset
 * requests), the determinism guarantee (multi-thread output is
 * bit-identical to jobs=1, images and FetchStats alike), selective
 * builds doing no extra work, and the checked accessors failing
 * loudly when an artefact was never requested.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/artifact_engine.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using core::ArtifactEngine;
using core::ArtifactKind;
using core::ArtifactRequest;
using core::Artifacts;
using core::BuildRequest;

const std::string &
sourceOf(const char *name)
{
    return workloads::workloadByName(name).source;
}

void
expectSameImage(const isa::Image &a, const isa::Image &b)
{
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.bitSize, b.bitSize);
    ASSERT_EQ(a.bytes.size(), b.bytes.size());
    EXPECT_EQ(a.bytes, b.bytes);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].bitOffset, b.blocks[i].bitOffset)
            << "block " << i;
        EXPECT_EQ(a.blocks[i].bitSize, b.blocks[i].bitSize)
            << "block " << i;
        EXPECT_EQ(a.blocks[i].numMops, b.blocks[i].numMops)
            << "block " << i;
    }
}

void
expectSameFetchStats(const fetch::FetchStats &a,
                     const fetch::FetchStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.idealCycles, b.idealCycles);
    EXPECT_EQ(a.opsDelivered, b.opsDelivered);
    EXPECT_EQ(a.blocksFetched, b.blocksFetched);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l0Hits, b.l0Hits);
    EXPECT_EQ(a.l0Misses, b.l0Misses);
    EXPECT_EQ(a.atbHits, b.atbHits);
    EXPECT_EQ(a.atbMisses, b.atbMisses);
    EXPECT_EQ(a.predictionsCorrect, b.predictionsCorrect);
    EXPECT_EQ(a.predictionsWrong, b.predictionsWrong);
    EXPECT_EQ(a.linesTransferred, b.linesTransferred);
    EXPECT_EQ(a.busBeats, b.busBeats);
    EXPECT_EQ(a.busBitFlips, b.busBitFlips);
    EXPECT_EQ(a.bytesTransferred, b.bytesTransferred);
}

TEST(ArtifactRequest, SetAlgebraAndParsing)
{
    const auto all = ArtifactRequest::all();
    EXPECT_TRUE(all.has(ArtifactKind::kTrace));
    EXPECT_TRUE(all.contains(ArtifactRequest{ArtifactKind::kByte}));

    const ArtifactRequest base_only{ArtifactKind::kBase};
    EXPECT_TRUE(base_only.has(ArtifactKind::kBase));
    EXPECT_FALSE(base_only.has(ArtifactKind::kFull));
    EXPECT_FALSE(base_only.contains(all));

    // kAtt needs the Full image; normalized() makes that explicit.
    const ArtifactRequest att{ArtifactKind::kAtt};
    EXPECT_TRUE(att.normalized().has(ArtifactKind::kFull));

    EXPECT_EQ(ArtifactRequest::parse("base,full"),
              (ArtifactRequest{ArtifactKind::kBase,
                               ArtifactKind::kFull}));
    EXPECT_EQ(ArtifactRequest::parse("all"), ArtifactRequest::all());
    EXPECT_EQ(ArtifactRequest::parse("none"), ArtifactRequest::none());
    EXPECT_EQ(ArtifactRequest::parse(
                  ArtifactRequest::all().toString()),
              ArtifactRequest::all());
}

TEST(ArtifactEngine, CacheHitIsPointerEqual)
{
    ArtifactEngine engine(1);
    const auto first =
        engine.build(sourceOf("matmul"), ArtifactRequest::all());
    const auto second =
        engine.build(sourceOf("matmul"), ArtifactRequest::all());
    EXPECT_EQ(first.get(), second.get());

    const auto stats = engine.stats();
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheMisses, 1u);
    EXPECT_EQ(stats.compiles, 1u);
}

TEST(ArtifactEngine, SupersetEntrySatisfiesSubsetRequest)
{
    ArtifactEngine engine(1);
    const auto everything =
        engine.build(sourceOf("matmul"), ArtifactRequest::all());
    const auto base_only = engine.build(
        sourceOf("matmul"), ArtifactRequest{ArtifactKind::kBase});
    EXPECT_EQ(everything.get(), base_only.get());
    EXPECT_EQ(engine.stats().compiles, 1u);
}

TEST(ArtifactEngine, DifferentConfigMissesTheCache)
{
    ArtifactEngine engine(1);
    const ArtifactRequest req{ArtifactKind::kBase};
    core::PipelineConfig other;
    other.compile.opt.constantFold = false;
    const auto a = engine.build(sourceOf("matmul"), req);
    const auto b = engine.build(sourceOf("matmul"), req, other);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(core::pipelineCacheKey(sourceOf("matmul"), {}),
              core::pipelineCacheKey(sourceOf("matmul"), other));
    EXPECT_EQ(engine.stats().compiles, 2u);
}

TEST(ArtifactEngine, BatchCoalescesDuplicates)
{
    ArtifactEngine engine(1);
    const BuildRequest req{sourceOf("matmul"),
                           ArtifactRequest::all(),
                           {}};
    const auto built = engine.buildMany({req, req, req});
    ASSERT_EQ(built.size(), 3u);
    EXPECT_EQ(built[0].get(), built[1].get());
    EXPECT_EQ(built[0].get(), built[2].get());
    EXPECT_EQ(engine.stats().compiles, 1u);
}

TEST(ArtifactEngine, SelectiveRequestBuildsNothingExtra)
{
    // The acceptance ablation: a {Base}-only request must build no
    // Huffman and no tailored image — witnessed by the counters.
    ArtifactEngine engine(1);
    const auto a = engine.build(
        sourceOf("matmul"),
        ArtifactRequest{ArtifactKind::kBase, ArtifactKind::kTrace});
    EXPECT_TRUE(a->has(ArtifactKind::kBase));
    EXPECT_FALSE(a->has(ArtifactKind::kFull));
    EXPECT_FALSE(a->has(ArtifactKind::kTailored));

    const auto stats = engine.stats();
    EXPECT_EQ(stats.baseImages, 1u);
    EXPECT_EQ(stats.huffmanImages(), 0u);
    EXPECT_EQ(stats.tailoredImages, 0u);
    EXPECT_EQ(stats.attBuilds, 0u);
}

TEST(ArtifactEngine, MultiThreadOutputIsBitIdenticalToSerial)
{
    // The determinism guarantee, end to end: build the same two
    // workloads with jobs=1 and jobs=4 and require every image, the
    // execution results, and the downstream fetch simulations to be
    // bit-identical.
    ArtifactEngine serial(1);
    ArtifactEngine parallel(4);

    std::vector<BuildRequest> requests;
    for (const char *name : {"matmul", "fir"})
        requests.push_back({sourceOf(name), ArtifactRequest::all(), {}});

    const auto from_serial = serial.buildMany(requests);
    const auto from_parallel = parallel.buildMany(requests);
    ASSERT_EQ(from_serial.size(), from_parallel.size());

    for (std::size_t w = 0; w < from_serial.size(); ++w) {
        const Artifacts &s = *from_serial[w];
        const Artifacts &p = *from_parallel[w];

        EXPECT_EQ(s.execution.exitValue, p.execution.exitValue);
        EXPECT_EQ(s.execution.dynamicOps, p.execution.dynamicOps);

        expectSameImage(s.baseImage(), p.baseImage());
        expectSameImage(s.byteImage().image, p.byteImage().image);
        expectSameImage(s.fullImage().image, p.fullImage().image);
        expectSameImage(s.tailoredImage(), p.tailoredImage());
        ASSERT_EQ(s.streamImages().size(), p.streamImages().size());
        for (std::size_t i = 0; i < s.streamImages().size(); ++i)
            expectSameImage(s.streamImage(i).image,
                            p.streamImage(i).image);

        EXPECT_EQ(s.att().totalBits(), p.att().totalBits());
        EXPECT_EQ(s.att().entryBits(), p.att().entryBits());

        for (auto scheme : {fetch::SchemeClass::kBase,
                            fetch::SchemeClass::kCompressed,
                            fetch::SchemeClass::kTailored}) {
            expectSameFetchStats(core::runFetch(s, scheme),
                                 core::runFetch(p, scheme));
        }
    }
}

TEST(ArtifactEngine, WrapperMatchesEngineOutput)
{
    // The legacy value-returning wrapper is a thin shim over the
    // engine; its images must match a cached engine build exactly.
    const Artifacts wrapped = core::buildArtifacts(sourceOf("matmul"));
    ArtifactEngine engine(2);
    const auto engined =
        engine.build(sourceOf("matmul"), ArtifactRequest::all());
    expectSameImage(wrapped.baseImage(), engined->baseImage());
    expectSameImage(wrapped.fullImage().image,
                    engined->fullImage().image);
    expectSameImage(wrapped.tailoredImage(), engined->tailoredImage());
}

TEST(ArtifactEngine, ClearCacheForcesRebuild)
{
    ArtifactEngine engine(1);
    const ArtifactRequest req{ArtifactKind::kBase};
    const auto a = engine.build(sourceOf("matmul"), req);
    engine.clearCache();
    const auto b = engine.build(sourceOf("matmul"), req);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(engine.stats().compiles, 2u);
}

TEST(ArtifactEngine, UnrequestedArtifactFailsLoudly)
{
    // Checked accessors: asking for an artefact that was never
    // requested is a programming error and must not silently return
    // an empty image (TEPIC_FATAL throws, with the kind in the
    // message).
    ArtifactEngine engine(1);
    const auto a = engine.build(
        sourceOf("matmul"), ArtifactRequest{ArtifactKind::kBase});
    EXPECT_THROW((void)a->fullImage(), std::runtime_error);
    EXPECT_THROW((void)a->tailoredIsa(), std::runtime_error);
    EXPECT_THROW((void)a->trace(), std::runtime_error);
    try {
        (void)a->byteImage();
        FAIL() << "byteImage() returned without an artefact";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
}

} // namespace
