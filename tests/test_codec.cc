/**
 * @file
 * Tests for the unified codec layer: the canonical-Huffman LUT decode
 * fast path against the per-bit reference walk (differential, over
 * randomized tables), the codec::Decoder implementations against the
 * compiled program, the decoded-block cache's counters and reference
 * stability, the cached-vs-uncached fetch-simulation equivalence, and
 * the engine's kDecoder memoization.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <thread>
#include <vector>

#include "codec/codec.hh"
#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "huffman/huffman.hh"
#include "support/bitstream.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using core::ArtifactKind;
using core::ArtifactRequest;
using huffman::CodeTable;
using huffman::SymbolHistogram;
using support::Rng;

// --- LUT decode vs canonical reference walk --------------------------

/** Encode @p count random symbols; decode with both paths. */
void
expectLutMatchesReference(const CodeTable &table,
                          const std::vector<std::uint64_t> &symbols)
{
    support::BitWriter writer;
    for (auto symbol : symbols)
        table.encode(symbol, writer);

    support::BitReader lut_reader(writer.bytes().data(),
                                  writer.bitSize());
    support::BitReader ref_reader(writer.bytes().data(),
                                  writer.bitSize());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
        const std::uint64_t via_lut = table.decode(lut_reader);
        const std::uint64_t via_ref =
            table.decodeReference(ref_reader);
        ASSERT_EQ(via_lut, via_ref) << "symbol index " << i;
        ASSERT_EQ(via_lut, symbols[i]) << "symbol index " << i;
        ASSERT_EQ(lut_reader.position(), ref_reader.position())
            << "symbol index " << i;
    }
    EXPECT_EQ(lut_reader.position(), writer.bitSize());
}

class LutDifferential : public ::testing::TestWithParam<int>
{
};

TEST_P(LutDifferential, MatchesReferenceOnRandomTables)
{
    const std::uint64_t seed =
        std::uint64_t(GetParam()) * 0x9e3779b9u + 17;
    Rng rng(seed);
    // Alphabet sizes from degenerate to larger-than-LUT; code-length
    // bounds straddling the 11-bit first-level window on both sides.
    const std::size_t alphabet = 1 + rng.below(600);
    unsigned max_length = unsigned(4 + rng.below(13));  // 4..16
    while ((std::uint64_t(1) << max_length) < alphabet)
        ++max_length;
    SymbolHistogram hist;
    for (std::size_t s = 0; s < alphabet; ++s)
        hist.add(s, rng.below(10000) + 1);

    const CodeTable table = CodeTable::build(hist, max_length);
    std::vector<std::uint64_t> symbols;
    for (int i = 0; i < 2000; ++i)
        symbols.push_back(rng.below(alphabet));
    expectLutMatchesReference(table, symbols);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LutDifferential,
                         ::testing::Range(0, 20));

TEST(LutDecode, OverflowSlotsFallBackToTheCanonicalWalk)
{
    // Exponentially skewed counts force a deep tree: with a 16-bit
    // bound and 40 symbols whose counts halve, many codes exceed the
    // 11-bit LUT window, so this exercises the overflow path.
    SymbolHistogram hist;
    std::uint64_t count = std::uint64_t(1) << 50;
    for (std::uint64_t s = 0; s < 40; ++s) {
        hist.add(s, count);
        count = count > 1 ? count / 2 : 1;
    }
    const CodeTable table = CodeTable::build(hist, 16);
    ASSERT_GT(table.maxCodeLength(), table.lutBits())
        << "histogram failed to produce codes past the LUT window";
    EXPECT_EQ(table.lutBits(), 11u);

    Rng rng(7);
    std::vector<std::uint64_t> symbols;
    for (int i = 0; i < 4000; ++i)
        symbols.push_back(rng.below(40));  // uniform: hits rare codes
    expectLutMatchesReference(table, symbols);
}

TEST(LutDecode, ShortTablesUseNarrowWindows)
{
    SymbolHistogram hist;
    hist.add(1, 10);
    hist.add(2, 1);
    const CodeTable table = CodeTable::build(hist, 8);
    EXPECT_EQ(table.lutBits(), table.maxCodeLength());
    EXPECT_LE(table.lutBits(), 11u);
    expectLutMatchesReference(table, {1, 2, 1, 1, 2, 1});
}

TEST(LutDecode, ChecksumKernelsAgree)
{
    SymbolHistogram hist;
    Rng rng(3);
    for (int i = 0; i < 300; ++i)
        hist.add(std::uint64_t(i), rng.below(5000) + 1);
    const CodeTable table = CodeTable::build(hist, 16);
    support::BitWriter writer;
    for (int i = 0; i < 5000; ++i)
        table.encode(rng.below(300), writer);

    support::BitReader lut_reader(writer.bytes().data(),
                                  writer.bitSize());
    support::BitReader ref_reader(writer.bytes().data(),
                                  writer.bitSize());
    EXPECT_EQ(codec::decodeChecksum(table, lut_reader, 5000),
              codec::decodeChecksumReference(table, ref_reader, 5000));
}

TEST(SymbolHistogram, TotalCountTracksAdds)
{
    SymbolHistogram hist;
    EXPECT_EQ(hist.totalCount(), 0u);
    hist.add(5);
    hist.add(5, 9);
    hist.add(7, 100);
    EXPECT_EQ(hist.totalCount(), 110u);
    EXPECT_EQ(hist.distinctSymbols(), 2u);
}

// --- Decoder implementations over real artifacts ---------------------

const core::Artifacts &
firArtifacts()
{
    static const core::Artifacts instance =
        core::ArtifactEngine::buildUncached(
            workloads::workloadByName("fir").source,
            ArtifactRequest{ArtifactKind::kBase, ArtifactKind::kFull,
                            ArtifactKind::kTailored,
                            ArtifactKind::kTrace,
                            ArtifactKind::kDecoder},
            {});
    return instance;
}

/** Flatten the program's block @p id into its operation sequence. */
std::vector<isa::Operation>
programOps(const isa::VliwProgram &program, isa::BlockId id)
{
    std::vector<isa::Operation> ops;
    for (const auto &mop : program.blocks()[id].mops)
        for (const auto &op : mop.ops())
            ops.push_back(op);
    return ops;
}

TEST(Decoder, EverySchemeDecodesBackToTheProgram)
{
    const auto &a = firArtifacts();
    const auto &program = a.compiled.program;
    for (auto scheme :
         {fetch::SchemeClass::kBase, fetch::SchemeClass::kCompressed,
          fetch::SchemeClass::kTailored}) {
        const codec::Decoder &decoder = a.decoder(scheme);
        SCOPED_TRACE(decoder.name());
        ASSERT_EQ(decoder.blockCount(), program.blocks().size());
        for (const auto &blk : program.blocks())
            EXPECT_EQ(decoder.decodeBlock(blk.id),
                      programOps(program, blk.id));
    }
}

TEST(Decoder, FingerprintsSeparateSchemesAndContents)
{
    const auto &a = firArtifacts();
    const auto base = a.decoder(fetch::SchemeClass::kBase)
                          .fingerprint();
    const auto full = a.decoder(fetch::SchemeClass::kCompressed)
                          .fingerprint();
    const auto tailored = a.decoder(fetch::SchemeClass::kTailored)
                              .fingerprint();
    EXPECT_NE(base, full);
    EXPECT_NE(base, tailored);
    EXPECT_NE(full, tailored);
    // Same image, fresh decoder: identity is content, not object.
    EXPECT_EQ(codec::makeBaseDecoder(a.baseImage())->fingerprint(),
              base);
}

TEST(DecodedBlockCache, CountsAndKeepsReferencesStable)
{
    const auto &a = firArtifacts();
    const codec::Decoder &decoder =
        a.decoder(fetch::SchemeClass::kCompressed);
    codec::DecodedBlockCache cache(decoder);
    ASSERT_EQ(cache.size(), decoder.blockCount());
    EXPECT_EQ(cache.fingerprint(), decoder.fingerprint());

    const auto &first = cache.ops(0);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.opsDecoded(), first.size());
    const auto *address = &first;

    const auto &again = cache.ops(0);
    EXPECT_EQ(&again, address) << "replay must not move the storage";
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(again, decoder.decodeBlock(0));

    // Touch everything: misses are bounded by the static block count.
    for (std::size_t id = 0; id < cache.size(); ++id)
        cache.ops(isa::BlockId(id));
    EXPECT_EQ(cache.misses(), cache.size());
    EXPECT_EQ(&cache.ops(0), address);
}

TEST(DecodedBlockCache, CachedFetchSimulationIsBitIdentical)
{
    const auto &a = firArtifacts();
    for (auto scheme :
         {fetch::SchemeClass::kBase, fetch::SchemeClass::kCompressed,
          fetch::SchemeClass::kTailored}) {
        SCOPED_TRACE(fetch::schemeClassName(scheme));
        const auto &image = core::imageFor(a, scheme);
        const auto config = fetch::FetchConfig::paper(scheme);
        const auto plain = fetch::simulateFetch(
            image, a.compiled.program, a.trace(), config);

        codec::DecodedBlockCache cache(a.decoder(scheme));
        auto cached_config = config;
        cached_config.decodedBlocks = &cache;
        const auto cached = fetch::simulateFetch(
            image, a.compiled.program, a.trace(), cached_config);

        EXPECT_EQ(cached.cycles, plain.cycles);
        EXPECT_EQ(cached.stallCycles, plain.stallCycles);
        EXPECT_EQ(cached.mispredictStallCycles,
                  plain.mispredictStallCycles);
        EXPECT_EQ(cached.refillStallCycles, plain.refillStallCycles);
        EXPECT_EQ(cached.decodeStallCycles, plain.decodeStallCycles);
        EXPECT_EQ(cached.atbStallCycles, plain.atbStallCycles);
        EXPECT_EQ(cached.l0SavedCycles, plain.l0SavedCycles);
        EXPECT_EQ(cached.busBitFlips, plain.busBitFlips);
        EXPECT_EQ(cached.bytesTransferred, plain.bytesTransferred);
        EXPECT_EQ(cached.l1Hits, plain.l1Hits);
        EXPECT_EQ(cached.l1Misses, plain.l1Misses);
        EXPECT_EQ(cached.l0Hits, plain.l0Hits);
        EXPECT_EQ(cached.l0Misses, plain.l0Misses);
        EXPECT_EQ(cached.atbHits, plain.atbHits);
        EXPECT_EQ(cached.atbMisses, plain.atbMisses);
        EXPECT_EQ(cached.predictionsCorrect,
                  plain.predictionsCorrect);
        EXPECT_EQ(cached.predictionsWrong, plain.predictionsWrong);
        EXPECT_EQ(cached.blocksFetched, plain.blocksFetched);
        EXPECT_EQ(cached.opsDelivered, plain.opsDelivered);

        // Every dynamic fetch touched the cache; every static block
        // at most one decode.
        EXPECT_EQ(cache.hits() + cache.misses(), cached.blocksFetched);
        EXPECT_LE(cache.misses(), cache.size());
    }
}

TEST(DecodedBlockCache, ConcurrentRunFetchChargesExactPerRunDeltas)
{
    // core::runFetch() attaches a fresh DecodedBlockCache per call
    // over the shared pre-warmed (const) decoder, so concurrent runs
    // stay independent and the per-run codec.* deltas it charges are
    // exact-gated: K parallel runs add exactly K times one run's
    // counters, and each run's cache accesses tile its fetches
    // (hits + misses == blocks fetched).
    const auto &a = firArtifacts();
    auto &m = support::MetricsRegistry::global();
    const auto scheme = fetch::SchemeClass::kCompressed;
    const std::string prefix = "codec.compressed.";
    const auto snapshot = [&] {
        return std::array<std::uint64_t, 3>{
            m.counter(prefix + "block_cache_hits"),
            m.counter(prefix + "block_cache_misses"),
            m.counter(prefix + "ops_decoded")};
    };

    const auto before = snapshot();
    const auto serial = core::runFetch(a, scheme);
    const auto after_one = snapshot();
    const std::uint64_t hits = after_one[0] - before[0];
    const std::uint64_t misses = after_one[1] - before[1];
    const std::uint64_t decoded = after_one[2] - before[2];
    EXPECT_EQ(hits + misses, serial.blocksFetched);
    EXPECT_GE(misses, 1u);
    EXPECT_LE(misses, a.decoder(scheme).blockCount())
        << "a cold cache misses each touched static block once";
    EXPECT_GT(decoded, 0u);

    constexpr unsigned kRuns = 8;
    std::vector<fetch::FetchStats> stats(kRuns);
    {
        std::vector<std::thread> threads;
        threads.reserve(kRuns);
        for (unsigned k = 0; k < kRuns; ++k) {
            threads.emplace_back([&a, &stats, scheme, k] {
                stats[k] = core::runFetch(a, scheme);
            });
        }
        for (auto &t : threads)
            t.join();
    }
    const auto after_all = snapshot();
    EXPECT_EQ(after_all[0] - after_one[0], kRuns * hits);
    EXPECT_EQ(after_all[1] - after_one[1], kRuns * misses);
    EXPECT_EQ(after_all[2] - after_one[2], kRuns * decoded);
    for (unsigned k = 0; k < kRuns; ++k) {
        EXPECT_EQ(stats[k].blocksFetched, serial.blocksFetched)
            << "run " << k;
        EXPECT_EQ(stats[k].cycles, serial.cycles) << "run " << k;
    }
}

// --- Engine integration ----------------------------------------------

TEST(EngineDecoders, PrewarmedMemoizedAndCached)
{
    core::ArtifactEngine engine(1);
    const std::string source =
        workloads::workloadByName("matmul").source;
    const ArtifactRequest request{ArtifactKind::kDecoder};

    const auto built = engine.build(source, request);
    EXPECT_EQ(engine.stats().decoderBuilds, 3u);

    // kDecoder implies the three fetch-scheme images.
    EXPECT_TRUE(built->has(ArtifactKind::kBase));
    EXPECT_TRUE(built->has(ArtifactKind::kFull));
    EXPECT_TRUE(built->has(ArtifactKind::kTailored));

    // Memoized: repeated access is the same object.
    const auto &first = built->decoder(fetch::SchemeClass::kBase);
    EXPECT_EQ(&built->decoder(fetch::SchemeClass::kBase), &first);

    // Cached: a second request rebuilds nothing.
    const auto again = engine.build(source, request);
    EXPECT_EQ(again.get(), built.get());
    EXPECT_EQ(engine.stats().decoderBuilds, 3u);

    // The decoders view this object's images.
    EXPECT_EQ(built->decoder(fetch::SchemeClass::kCompressed)
                  .blockCount(),
              built->fullImage().image.blocks.size());
}

TEST(EngineDecoders, RequestParsingKnowsDecoder)
{
    const auto parsed = ArtifactRequest::parse("base,decoder");
    EXPECT_TRUE(parsed.has(ArtifactKind::kDecoder));
    EXPECT_EQ(parsed.toString(), "base,decoder");
    const auto normalized = parsed.normalized();
    EXPECT_TRUE(normalized.has(ArtifactKind::kFull));
    EXPECT_TRUE(normalized.has(ArtifactKind::kTailored));
    EXPECT_TRUE(ArtifactRequest::all().has(ArtifactKind::kDecoder));
    EXPECT_EQ(ArtifactRequest::parse(
                  ArtifactRequest::all().toString()),
              ArtifactRequest::all());
}

} // namespace
