/**
 * @file
 * Cache-behavior observability tests: the 3C miss classification
 * (compulsory / capacity / conflict must tile L1 misses exactly, with
 * hand-built traces hitting each class), the Olken-style reuse
 * distance tracker checked against a brute-force oracle across
 * compactions, line-lifetime (dead-on-fill) accounting, whole-sim
 * tiling for all three fetch organisations, the recorder's
 * architectural transparency (on/off bit-identity), and the
 * tepic-cache-v1 session report (determinism, geometry keying,
 * round-trip through the test JSON parser).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "compiler/driver.hh"
#include "fetch/banked_cache.hh"
#include "fetch/cache_stats.hh"
#include "fetch/fetch_sim.hh"
#include "isa/baseline.hh"
#include "schemes/huffman_scheme.hh"
#include "sim/emulator.hh"
#include "support/rng.hh"

#include "json_mini.hh"

namespace {

using namespace tepic;
using fetch::CacheConfig;
using fetch::CacheStats;
using fetch::CacheStatsConfig;
using fetch::SchemeClass;

#if TEPIC_CACHESTATS_ENABLED

using fetch::CacheStatsRecorder;
using fetch::ReuseDistanceTracker;

/**
 * A BankedCache with its recorder attached, driven the way
 * simulateFetch drives them: every access is one fetch event, one
 * ATB access (always a hit — irrelevant here) and one L1 block
 * access.
 */
struct Rig
{
    fetch::BankedCache cache;
    CacheStatsRecorder rec;
    std::uint32_t nextFetch = 0;

    explicit Rig(const CacheConfig &config,
                 std::uint64_t expected_events = 1024,
                 const CacheStatsConfig &options = enabledConfig())
        : cache(config), rec(config, expected_events, options)
    {
        cache.setObserver(&rec);
    }

    static CacheStatsConfig
    enabledConfig()
    {
        CacheStatsConfig c;
        c.enabled = true;
        return c;
    }

    bool
    access(std::uint32_t addr, std::uint32_t size = 1)
    {
        rec.onFetch(nextFetch++);
        rec.onAtbAccess(true);
        const auto result = cache.accessBlock(addr, size);
        rec.onL1Block(addr, size, result.hit);
        return result.hit;
    }
};

/**
 * Never-repeated addresses: every miss touches fresh lines, so the
 * whole miss column lands in the compulsory class.
 */
TEST(ThreeC, ColdStreamIsAllCompulsory)
{
    Rig rig({4, 2, 16});
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_FALSE(rig.access(i * 16, 16));
    const CacheStats stats = rig.rec.finish();
    EXPECT_EQ(stats.misses, 32u);
    EXPECT_EQ(stats.compulsory, 32u);
    EXPECT_EQ(stats.capacity, 0u);
    EXPECT_EQ(stats.conflict, 0u);
    EXPECT_EQ(stats.reuseCold, 32u);
}

/**
 * Two lines that map to the same set of a 2-set direct-mapped cache
 * but fit a fully-associative cache of the same total capacity:
 * after the cold pass every ping-pong miss is a conflict miss.
 */
TEST(ThreeC, SameSetPingPongIsConflict)
{
    Rig rig({2, 1, 16});  // 2 lines total; lines 0 and 2 share set 0
    const std::uint32_t a = 0, b = 32;
    EXPECT_FALSE(rig.access(a, 16));
    EXPECT_FALSE(rig.access(b, 16));
    for (int round = 0; round < 5; ++round) {
        EXPECT_FALSE(rig.access(a, 16));
        EXPECT_FALSE(rig.access(b, 16));
    }
    const CacheStats stats = rig.rec.finish();
    EXPECT_EQ(stats.compulsory, 2u);
    EXPECT_EQ(stats.conflict, 10u);
    EXPECT_EQ(stats.capacity, 0u);
    // Both contenders live in set 0; set 1 never sees an event.
    EXPECT_EQ(stats.setAccesses[1], 0u);
    EXPECT_GT(stats.setEvictions[0], 0u);
}

/**
 * Three lines cycled through a 2-line cache: even the
 * fully-associative shadow cannot hold the working set, so the warm
 * misses split between capacity (shadow missed too) and the one
 * same-set hit the real cache keeps.
 */
TEST(ThreeC, WorkingSetLargerThanCacheIsCapacity)
{
    Rig rig({2, 1, 16});
    // Lines 0, 1, 2: set map 0,1,0. Cycle 0,16,32 twice.
    EXPECT_FALSE(rig.access(0, 16));   // compulsory
    EXPECT_FALSE(rig.access(16, 16));  // compulsory
    EXPECT_FALSE(rig.access(32, 16));  // compulsory (evicts line 0)
    EXPECT_FALSE(rig.access(0, 16));   // shadow holds {1,2}: capacity
    EXPECT_TRUE(rig.access(16, 16));   // line 1 undisturbed in set 1
    EXPECT_FALSE(rig.access(32, 16));  // shadow holds {1,0}: capacity
    const CacheStats stats = rig.rec.finish();
    EXPECT_EQ(stats.accesses, 6u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 5u);
    EXPECT_EQ(stats.compulsory, 3u);
    EXPECT_EQ(stats.capacity, 2u);
    EXPECT_EQ(stats.conflict, 0u);
}

/**
 * A fully-associative cache is its own shadow: with single-line
 * blocks the two LRU stacks stay in lockstep, so no miss can ever be
 * classified as conflict.
 */
TEST(ThreeC, FullyAssociativeNeverConflicts)
{
    Rig rig({1, 8, 16});
    support::Rng rng(42);
    for (int i = 0; i < 2000; ++i)
        rig.access(std::uint32_t(rng.below(24)) * 16, 16);
    const CacheStats stats = rig.rec.finish();
    EXPECT_GT(stats.misses, stats.compulsory);  // working set > 8
    EXPECT_EQ(stats.conflict, 0u);
    EXPECT_EQ(stats.misses,
              stats.compulsory + stats.capacity + stats.conflict);
}

/** Multi-line blocks classify on pre-access state, not their own
 *  earlier lines, and first_touch wins over the shadow probe. */
TEST(ThreeC, MultiLineBlocksClassifyOnPreAccessState)
{
    Rig rig({4, 2, 16});
    // A 3-line block: one access, one compulsory miss (its own first
    // line must not make the later ones look warm).
    EXPECT_FALSE(rig.access(0, 48));
    // A block overlapping 2 touched + 1 fresh line: still compulsory.
    EXPECT_FALSE(rig.access(16, 48));
    const CacheStats stats = rig.rec.finish();
    EXPECT_EQ(stats.compulsory, 2u);
    EXPECT_EQ(stats.capacity + stats.conflict, 0u);
}

/** The reuse tracker against a brute-force oracle, across enough
 *  accesses to force several position-space compactions. */
TEST(ReuseDistance, MatchesBruteForceAcrossCompactions)
{
    ReuseDistanceTracker tracker(12);
    support::Rng rng(7);
    std::vector<std::uint32_t> history;
    for (int i = 0; i < 1000; ++i) {
        const auto block = std::uint32_t(rng.below(12));
        // Oracle: distinct blocks strictly between this access and
        // the previous access of the same block.
        std::uint64_t expected = ReuseDistanceTracker::kCold;
        for (std::size_t j = history.size(); j-- > 0;) {
            if (history[j] == block) {
                std::set<std::uint32_t> distinct(
                    history.begin() + std::ptrdiff_t(j) + 1,
                    history.end());
                expected = distinct.size();
                break;
            }
        }
        ASSERT_EQ(tracker.access(block), expected)
            << "access " << i << " of block " << block;
        history.push_back(block);
    }
    // The position space (>= 64 slots) must have wrapped many times.
    EXPECT_GT(tracker.compactions(), 5u);
}

TEST(ReuseDistance, DistanceZeroAndColdAreDistinct)
{
    ReuseDistanceTracker tracker(4);
    EXPECT_EQ(tracker.access(3), ReuseDistanceTracker::kCold);
    EXPECT_EQ(tracker.access(3), 0u);  // immediate re-access
    EXPECT_EQ(tracker.access(5), ReuseDistanceTracker::kCold);
    EXPECT_EQ(tracker.access(3), 1u);  // one distinct block between
}

/** Dead-on-fill: a line evicted before any re-reference. */
TEST(LineLifetime, DeadOnFillCountsZeroUseEvictions)
{
    Rig rig({1, 1, 16});
    rig.access(0, 16);   // fill line 0
    rig.access(16, 16);  // evicts line 0 with zero uses: dead
    rig.access(16, 16);  // hit: line 1 now has one use
    rig.access(0, 16);   // evicts line 1 with one use: not dead
    const CacheStats stats = rig.rec.finish();
    EXPECT_EQ(stats.lineFills, 3u);
    EXPECT_EQ(stats.lineEvictions, 2u);
    EXPECT_EQ(stats.deadOnFill, 1u);
    EXPECT_EQ(stats.residentAtEnd, 1u);
    const auto &bins = stats.evictionUseHistogram.bins();
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_EQ(bins.at(0), 1u);
    EXPECT_EQ(bins.at(1), 1u);
}

/** Reuse sampling thins the stream but never breaks the tiling. */
TEST(Recorder, ReuseSamplingIsExactCeilDivision)
{
    CacheStatsConfig options;
    options.enabled = true;
    options.reuseSampleEvery = 7;
    Rig rig({4, 2, 16}, 1024, options);
    support::Rng rng(3);
    const std::uint64_t n = 100;
    for (std::uint64_t i = 0; i < n; ++i)
        rig.access(std::uint32_t(rng.below(16)) * 16, 16);
    const CacheStats stats = rig.rec.finish();
    EXPECT_EQ(stats.reuseSamples, (n + 6) / 7);
    EXPECT_EQ(stats.reuseSamples,
              stats.reuseCold + stats.reuseLog2Histogram.total());
}

/** The per-set vectors and heatmap matrices tile each other. */
TEST(Recorder, HeatmapColumnsSumToPerSetVectors)
{
    CacheStatsConfig options;
    options.enabled = true;
    options.heatmapEpochs = 4;
    Rig rig({8, 2, 16}, 500, options);
    support::Rng rng(11);
    for (int i = 0; i < 500; ++i)
        rig.access(std::uint32_t(rng.below(64)) * 16, 16);
    const CacheStats stats = rig.rec.finish();
    ASSERT_EQ(stats.heatAccesses.size(), 4u * 8u);
    std::uint64_t heat_total = 0;
    for (unsigned s = 0; s < 8; ++s) {
        std::uint64_t col = 0;
        for (unsigned e = 0; e < 4; ++e)
            col += stats.heatAccesses[e * 8 + s];
        EXPECT_EQ(col, stats.setAccesses[s]) << "set " << s;
        heat_total += col;
    }
    EXPECT_GT(heat_total, 0u);
    // Events spread across epochs, not just the first row.
    std::uint64_t last_epoch = 0;
    for (unsigned s = 0; s < 8; ++s)
        last_epoch += stats.heatAccesses[3 * 8 + s];
    EXPECT_GT(last_epoch, 0u);
}

/** merge(): sums counters; an unrecorded target adopts the source. */
TEST(Recorder, MergeSumsSameGeometryRecords)
{
    auto run = [] {
        Rig rig({2, 1, 16});
        rig.access(0, 16);
        rig.access(32, 16);
        rig.access(0, 16);
        return rig.rec.finish();
    };
    const CacheStats one = run();
    CacheStats merged;  // unrecorded: adopts
    merged.merge(one);
    merged.merge(run());
    EXPECT_TRUE(merged.recorded);
    EXPECT_EQ(merged.fetches, 2 * one.fetches);
    EXPECT_EQ(merged.misses, 2 * one.misses);
    EXPECT_EQ(merged.conflict, 2 * one.conflict);
    EXPECT_EQ(merged.setAccesses[0], 2 * one.setAccesses[0]);
    EXPECT_EQ(merged.reuseLog2Histogram.total(),
              2 * one.reuseLog2Histogram.total());
    merged.assertTiling();
}

// ---------------------------------------------------------------------------
// Whole-simulation coverage.

/** One compiled+emulated workload for the sim-level tests. */
struct SimFixture
{
    compiler::CompiledProgram compiled;
    sim::EmulationResult emu;
    isa::Image baseImage;
    schemes::CompressedImage full;

    SimFixture()
        : compiled(compiler::compileSource(R"(
            func f(x): int {
                if (x % 3 == 0) { return x * 2; }
                return x + 1;
            }
            func main(): int {
                var s = 0;
                for (var i = 0; i < 400; i = i + 1) { s = s + f(i); }
                return s;
            }
          )")),
          emu(sim::emulate(compiled.program, compiled.data)),
          baseImage(isa::buildBaselineImage(compiled.program)),
          full(schemes::compressFull(compiled.program))
    {
    }

    const isa::Image &
    imageFor(SchemeClass scheme) const
    {
        return scheme == SchemeClass::kCompressed ? full.image
                                                  : baseImage;
    }
};

TEST(FetchSimCacheStats, TilesAndCrossChecksAllSchemes)
{
    SimFixture fx;
    for (auto scheme :
         {SchemeClass::kBase, SchemeClass::kCompressed,
          SchemeClass::kTailored}) {
        SCOPED_TRACE(fetch::schemeClassName(scheme));
        auto config = fetch::FetchConfig::paper(scheme);
        config.cacheStats.enabled = true;
        const auto stats = fetch::simulateFetch(
            fx.imageFor(scheme), fx.compiled.program, fx.emu.trace,
            config);
        const CacheStats &cs = stats.cacheStats;
        ASSERT_TRUE(cs.recorded);
        cs.assertTiling();
        // Cross-checks against the simulator's own counters. Note
        // the simulator counts an L0 bypass as an L1 hit for the
        // cycle model; the recorder keeps the levels apart.
        EXPECT_EQ(cs.fetches, stats.blocksFetched);
        EXPECT_EQ(cs.l0Bypasses, stats.l0Hits);
        EXPECT_EQ(cs.misses, stats.l1Misses);
        EXPECT_EQ(cs.hits, stats.l1Hits - stats.l0Hits);
        EXPECT_EQ(cs.atbHits, stats.atbHits);
        EXPECT_EQ(cs.atbMisses, stats.atbMisses);
        EXPECT_EQ(cs.misses,
                  cs.compulsory + cs.capacity + cs.conflict);
        EXPECT_GT(cs.compulsory, 0u);  // cold start is never free
        EXPECT_EQ(cs.sets, config.cache.sets);
        EXPECT_EQ(cs.lineBytes, config.cache.lineBytes);
    }
}

/** The recorder is purely observational: switching it on must not
 *  move a single architectural counter. */
TEST(FetchSimCacheStats, RecordingIsArchitecturallyInvisible)
{
    SimFixture fx;
    for (auto scheme :
         {SchemeClass::kBase, SchemeClass::kCompressed,
          SchemeClass::kTailored}) {
        SCOPED_TRACE(fetch::schemeClassName(scheme));
        const auto plain = fetch::simulateFetch(
            fx.imageFor(scheme), fx.compiled.program, fx.emu.trace,
            fetch::FetchConfig::paper(scheme));
        auto config = fetch::FetchConfig::paper(scheme);
        config.cacheStats.enabled = true;
        const auto recorded = fetch::simulateFetch(
            fx.imageFor(scheme), fx.compiled.program, fx.emu.trace,
            config);
        EXPECT_FALSE(plain.cacheStats.recorded);
        EXPECT_TRUE(recorded.cacheStats.recorded);
        EXPECT_EQ(recorded.cycles, plain.cycles);
        EXPECT_EQ(recorded.stallCycles, plain.stallCycles);
        EXPECT_EQ(recorded.l1Hits, plain.l1Hits);
        EXPECT_EQ(recorded.l1Misses, plain.l1Misses);
        EXPECT_EQ(recorded.l0Hits, plain.l0Hits);
        EXPECT_EQ(recorded.atbHits, plain.atbHits);
        EXPECT_EQ(recorded.busBitFlips, plain.busBitFlips);
        EXPECT_EQ(recorded.bytesTransferred, plain.bytesTransferred);
        EXPECT_EQ(recorded.predictionsWrong, plain.predictionsWrong);
    }
}

/** Two identical runs produce bit-identical CacheStats — the
 *  determinism the exact-gated CACHE report relies on. */
TEST(FetchSimCacheStats, RerunsAreBitIdentical)
{
    SimFixture fx;
    auto config = fetch::FetchConfig::paper(SchemeClass::kCompressed);
    config.cacheStats.enabled = true;
    auto run = [&] {
        return fetch::simulateFetch(fx.full.image, fx.compiled.program,
                                    fx.emu.trace, config);
    };
    const CacheStats a = run().cacheStats;
    const CacheStats b = run().cacheStats;
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.compulsory, b.compulsory);
    EXPECT_EQ(a.capacity, b.capacity);
    EXPECT_EQ(a.conflict, b.conflict);
    EXPECT_EQ(a.reuseLog2Histogram.bins(),
              b.reuseLog2Histogram.bins());
    EXPECT_EQ(a.heatAccesses, b.heatAccesses);
    EXPECT_EQ(a.heatFills, b.heatFills);
    EXPECT_EQ(a.heatEvictions, b.heatEvictions);
}

// ---------------------------------------------------------------------------
// Session store + tepic-cache-v1 report.

struct SessionGuard
{
    SessionGuard() { fetch::cachestats::resetForTest(); }
    ~SessionGuard() { fetch::cachestats::resetForTest(); }
};

CacheStats
tinyRecord(std::uint32_t salt = 0)
{
    Rig rig({2, 1, 16});
    rig.access(0, 16);
    rig.access(32, 16);
    rig.access((salt % 2) * 32, 16);
    return rig.rec.finish();
}

TEST(CacheReport, RecordOrderDoesNotChangeTheReport)
{
    SessionGuard guard;
    const CacheStats rec = tinyRecord();

    fetch::cachestats::startSession();
    fetch::cachestats::record("go", SchemeClass::kBase, rec);
    fetch::cachestats::record("gcc", SchemeClass::kCompressed, rec);
    const std::string forward = fetch::cachestats::reportJson("t");

    fetch::cachestats::startSession();
    fetch::cachestats::record("gcc", SchemeClass::kCompressed, rec);
    fetch::cachestats::record("go", SchemeClass::kBase, rec);
    const std::string backward = fetch::cachestats::reportJson("t");

    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward, fetch::cachestats::reportJson("t"));
}

TEST(CacheReport, RoundTripsThroughJsonWithExactTiling)
{
    SessionGuard guard;
    fetch::cachestats::startSession();
    fetch::cachestats::record("go", SchemeClass::kCompressed,
                              tinyRecord());
    const auto doc =
        testjson::parse(fetch::cachestats::reportJson("unit"));
    EXPECT_EQ(doc.at("schema").str, "tepic-cache-v1");
    EXPECT_EQ(doc.at("name").str, "unit");
    const auto &wl = doc.at("structure").at("workloads").at("go");
    const auto &scheme = wl.at("compressed");
    const auto &l1 = scheme.at("l1");
    const auto &classes = l1.at("miss_classes");
    EXPECT_EQ(l1.at("misses").number,
              classes.at("compulsory").number +
                  classes.at("capacity").number +
                  classes.at("conflict").number);
    EXPECT_EQ(l1.at("accesses").number,
              l1.at("hits").number + l1.at("misses").number);
    const auto &heat = scheme.at("heatmap");
    ASSERT_EQ(heat.at("accesses").array.size(),
              std::size_t(heat.at("epochs").number));
    EXPECT_EQ(scheme.at("config").at("sets").number, 2.0);
}

TEST(CacheReport, GeometrySweepsAreKeyedApartNotMerged)
{
    SessionGuard guard;
    fetch::cachestats::startSession();
    fetch::cachestats::record("go", SchemeClass::kBase, tinyRecord());
    // Same workload+scheme, different geometry: must not merge.
    Rig other({4, 2, 32});
    other.access(0, 32);
    fetch::cachestats::record("go", SchemeClass::kBase,
                              other.rec.finish());
    const auto doc =
        testjson::parse(fetch::cachestats::reportJson("t"));
    const auto &workloads = doc.at("structure").at("workloads");
    EXPECT_TRUE(workloads.has("go"));
    EXPECT_TRUE(workloads.has("go@4x2x32"));
    EXPECT_EQ(workloads.at("go").at("base").at("config").at(
                                                  "sets").number,
              2.0);
    EXPECT_EQ(workloads.at("go@4x2x32")
                  .at("base")
                  .at("config")
                  .at("sets")
                  .number,
              4.0);
}

TEST(CacheReport, DisabledSessionRecordsNothing)
{
    SessionGuard guard;
    EXPECT_FALSE(fetch::cachestats::enabled());
    fetch::cachestats::record("go", SchemeClass::kBase, tinyRecord());
    const auto doc =
        testjson::parse(fetch::cachestats::reportJson("t"));
    EXPECT_TRUE(
        doc.at("structure").at("workloads").object.empty());
}

#endif // TEPIC_CACHESTATS_ENABLED

// ---------------------------------------------------------------------------
// Unconditional: the report stays a valid document in disabled
// builds, and an unrecorded CacheStats is inert.

TEST(CacheReport, EmptyReportIsValidJson)
{
    fetch::cachestats::resetForTest();
    const auto doc =
        testjson::parse(fetch::cachestats::reportJson("empty"));
    EXPECT_EQ(doc.at("schema").str, "tepic-cache-v1");
    EXPECT_TRUE(doc.at("structure").at("workloads").isObject());
}

TEST(CacheStatsStruct, UnrecordedIsInert)
{
    CacheStats stats;
    EXPECT_FALSE(stats.recorded);
    stats.assertTiling();  // no-op, must not fire
    CacheStats other;
    stats.merge(other);  // merging nothing into nothing
    EXPECT_FALSE(stats.recorded);
    EXPECT_EQ(stats.missRate(), 0.0);
    EXPECT_EQ(stats.deadOnFillRate(), 0.0);
}

} // namespace
