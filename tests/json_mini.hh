/**
 * @file
 * Minimal recursive-descent JSON parser for tests that round-trip the
 * observability outputs (Chrome trace-event files, metrics JSON).
 * Supports the full value grammar the emitters produce: objects,
 * arrays, strings with the escapes jsonQuote() writes, numbers, bools
 * and null. Throws std::runtime_error on malformed input — a test
 * failure, not a recoverable condition.
 */

#ifndef TEPIC_TESTS_JSON_MINI_HH
#define TEPIC_TESTS_JSON_MINI_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace tepic::testjson {

struct Value
{
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    bool isNull() const { return kind == Kind::kNull; }
    bool isObject() const { return kind == Kind::kObject; }
    bool isArray() const { return kind == Kind::kArray; }
    bool isString() const { return kind == Kind::kString; }
    bool isNumber() const { return kind == Kind::kNumber; }

    bool
    has(const std::string &key) const
    {
        return isObject() && object.count(key) > 0;
    }

    /** Object member access; throws on a missing key. */
    const Value &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (!isObject() || it == object.end())
            throw std::runtime_error("json: missing key '" + key + "'");
        return it->second;
    }
};

namespace detail {

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        throw std::runtime_error("json: " + std::string(what) +
                                 " at offset " + std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (consumeLiteral("true")) {
            Value v;
            v.kind = Value::Kind::kBool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            Value v;
            v.kind = Value::Kind::kBool;
            return v;
        }
        if (consumeLiteral("null"))
            return Value{};
        return parseNumber();
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::kObject;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            Value key = parseString();
            skipWs();
            expect(':');
            v.object[key.str] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::kArray;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value
    parseString()
    {
        Value v;
        v.kind = Value::Kind::kString;
        expect('"');
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': v.str += '"'; break;
              case '\\': v.str += '\\'; break;
              case '/': v.str += '/'; break;
              case 'n': v.str += '\n'; break;
              case 'r': v.str += '\r'; break;
              case 't': v.str += '\t'; break;
              case 'b': v.str += '\b'; break;
              case 'f': v.str += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                const unsigned long code = std::strtoul(
                    text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                // The emitters only escape control characters, so a
                // plain one-byte append suffices for the round trip.
                v.str += char(code & 0xff);
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t begin = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == begin)
            fail("expected a value");
        Value v;
        v.kind = Value::Kind::kNumber;
        v.number = std::strtod(text_.substr(begin, pos_ - begin).c_str(),
                               nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace detail

inline Value
parse(const std::string &text)
{
    return detail::Parser(text).parse();
}

} // namespace tepic::testjson

#endif // TEPIC_TESTS_JSON_MINI_HH
