/**
 * @file
 * Tests for the Chrome trace-event layer (support/trace) and the
 * fetch simulator's per-block record trace: span nesting, per-thread
 * buffer flushing, JSON round trips through the mini parser,
 * disabled-mode cost, and the golden self-consistency check that the
 * per-block records sum exactly to the aggregate FetchStats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "fetch/fetch_sim.hh"
#include "json_mini.hh"
#include "support/thread_pool.hh"
#include "support/trace.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
namespace trace = support::trace;

#if TEPIC_TRACING_ENABLED

/** Find the first event with @p name; fails the test when absent. */
testjson::Value
findEvent(const testjson::Value &doc, const std::string &name)
{
    for (const auto &event : doc.at("traceEvents").array)
        if (event.at("name").str == name)
            return event;
    ADD_FAILURE() << "no trace event named '" << name << "'";
    return {};
}

// Must run before any start() in this binary: while tracing is
// disabled, span/instant/counter calls may not materialize a thread
// buffer or enqueue anything.
TEST(Trace, DisabledModeRecordsNothing)
{
    ASSERT_FALSE(trace::enabled());
    bool worker_has_buffer = true;
    std::thread worker([&] {
        {
            TEPIC_TRACE_SPAN("disabled.span");
            trace::instant("disabled.instant");
            trace::counter("disabled.counter", 1.0);
        }
        worker_has_buffer = trace::threadHasBuffer();
    });
    worker.join();
    EXPECT_FALSE(worker_has_buffer);
    EXPECT_EQ(trace::pendingEvents(), 0u);
}

TEST(Trace, SpanNestingRoundTrip)
{
    trace::start("");
    {
        TEPIC_TRACE_SPAN("outer", "test");
        {
            TEPIC_TRACE_SPAN("inner", "test");
        }
        trace::instant("mark", "test");
        trace::counter("cache_hits", 42.0, "test");
    }
    const auto doc = testjson::parse(trace::stopToJson());
    EXPECT_FALSE(trace::enabled());

    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
    EXPECT_EQ(doc.at("traceEvents").array.size(), 4u);

    const auto outer = findEvent(doc, "outer");
    const auto inner = findEvent(doc, "inner");
    EXPECT_EQ(outer.at("ph").str, "X");
    EXPECT_EQ(outer.at("cat").str, "test");
    EXPECT_EQ(outer.at("pid").number, 1.0);
    // The inner span starts after and ends before the outer one.
    EXPECT_GE(inner.at("ts").number, outer.at("ts").number);
    EXPECT_LE(inner.at("ts").number + inner.at("dur").number,
              outer.at("ts").number + outer.at("dur").number + 1e-9);
    // Same thread: identical tid.
    EXPECT_EQ(inner.at("tid").number, outer.at("tid").number);

    const auto mark = findEvent(doc, "mark");
    EXPECT_EQ(mark.at("ph").str, "i");
    EXPECT_EQ(mark.at("s").str, "t");

    const auto counter = findEvent(doc, "cache_hits");
    EXPECT_EQ(counter.at("ph").str, "C");
    EXPECT_EQ(counter.at("args").at("value").number, 42.0);
}

TEST(Trace, SpanArgsEmitted)
{
    trace::start("");
    {
        trace::Span span("tagged", "test", "{\"workload\":\"fir\"}");
    }
    const auto doc = testjson::parse(trace::stopToJson());
    const auto tagged = findEvent(doc, "tagged");
    EXPECT_EQ(tagged.at("args").at("workload").str, "fir");
}

TEST(Trace, ThreadBuffersFlushAtStop)
{
    trace::start("");
    {
        TEPIC_TRACE_SPAN("main.span", "test");
    }
    // The worker's buffer is destroyed at thread exit — its events
    // must retire into the registry, not vanish.
    std::thread worker([] { TEPIC_TRACE_SPAN("worker.span", "test"); });
    worker.join();
    EXPECT_EQ(trace::pendingEvents(), 2u);

    const auto doc = testjson::parse(trace::stopToJson());
    const auto main_span = findEvent(doc, "main.span");
    const auto worker_span = findEvent(doc, "worker.span");
    EXPECT_NE(main_span.at("tid").number, worker_span.at("tid").number);
}

TEST(Trace, PoolDrainOnDestructRetainsWorkerSpans)
{
    // Regression: spans emitted by ThreadPool workers while the pool
    // drains its queue on destruction must all survive into the
    // report. The workers' thread-local buffers retire as the threads
    // exit (inside ~ThreadPool's join), which races with nothing here
    // — but the retirement path must run with the session still
    // started, or the drained tasks' spans would be discarded.
    constexpr int kRounds = 10;
    constexpr int kTasks = 32;
    for (int round = 0; round < kRounds; ++round) {
        trace::start("");
        {
            support::ThreadPool pool(4);
            for (int i = 0; i < kTasks; ++i) {
                pool.submit([] {
                    TEPIC_TRACE_SPAN("drain.span", "test");
                });
            }
            // Pool destroyed with tasks still queued/in flight:
            // drain-on-destruct runs every one of them first.
        }
        const auto doc = testjson::parse(trace::stopToJson());
        int spans = 0;
        for (const auto &event : doc.at("traceEvents").array)
            if (event.at("name").str == "drain.span")
                ++spans;
        ASSERT_EQ(spans, kTasks) << "round " << round;
        ASSERT_EQ(trace::pendingEvents(), 0u) << "round " << round;
    }
}

TEST(Trace, SpanStraddlingStopIsDropped)
{
    trace::start("");
    auto *straddler = new trace::Span("straddle", "test");
    const auto doc = testjson::parse(trace::stopToJson());
    delete straddler;  // destroyed after stop: must not record
    EXPECT_EQ(doc.at("traceEvents").array.size(), 0u);
    EXPECT_EQ(trace::pendingEvents(), 0u);
}

TEST(Trace, StopWritesFile)
{
    const std::string path = "test_trace_out.json";
    trace::start(path);
    {
        TEPIC_TRACE_SPAN("file.span", "test");
    }
    trace::stop();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = testjson::parse(buffer.str());
    findEvent(doc, "file.span");
    std::remove(path.c_str());
}

TEST(Trace, RestartClearsPreviousSession)
{
    trace::start("");
    trace::instant("first.session", "test");
    trace::start("");  // restart discards the buffered event
    trace::instant("second.session", "test");
    const auto doc = testjson::parse(trace::stopToJson());
    ASSERT_EQ(doc.at("traceEvents").array.size(), 1u);
    EXPECT_EQ(doc.at("traceEvents").array[0].at("name").str,
              "second.session");
}

#else // !TEPIC_TRACING_ENABLED

TEST(Trace, CompiledOutLayerIsInert)
{
    trace::start("never_written.json");
    {
        TEPIC_TRACE_SPAN("noop");
    }
    EXPECT_FALSE(trace::enabled());
    EXPECT_FALSE(trace::threadHasBuffer());
    EXPECT_EQ(trace::pendingEvents(), 0u);
    const auto doc = testjson::parse(trace::stopToJson());
    EXPECT_EQ(doc.at("traceEvents").array.size(), 0u);
}

#endif // TEPIC_TRACING_ENABLED

// --- fetch-simulator per-block trace (independent of the Chrome
// --- layer: gated by FetchConfig::trace, not TEPIC_TRACING_ENABLED)

const core::Artifacts &
firArtifacts()
{
    static const core::Artifacts artifacts =
        core::ArtifactEngine::buildUncached(
            workloads::workloadByName("fir").source,
            core::ArtifactRequest{core::ArtifactKind::kBase,
                                  core::ArtifactKind::kTrace},
            {});
    return artifacts;
}

fetch::FetchStats
runTracedFetch(fetch::FetchTraceOptions options)
{
    const auto &a = firArtifacts();
    auto config = fetch::FetchConfig::paper(fetch::SchemeClass::kBase);
    config.trace = options;
    return fetch::simulateFetch(a.baseImage(), a.compiled.program,
                                a.trace(), config);
}

/**
 * Golden self-consistency check: with an unbounded, unsampled trace,
 * the per-block records tile the aggregate stats exactly — same
 * event count, and cycles/stalls that sum to the totals.
 */
TEST(FetchTrace, RecordsTileAggregateStats)
{
    fetch::FetchTraceOptions options;
    options.enabled = true;
    options.ringCapacity = 0;
    const auto stats = runTracedFetch(options);

    ASSERT_GT(stats.blocksFetched, 0u);
    EXPECT_EQ(stats.trace.recorded(), stats.blocksFetched);
    EXPECT_EQ(stats.trace.dropped(), 0u);

    const auto records = stats.trace.inOrder();
    ASSERT_EQ(records.size(), stats.blocksFetched);
    std::uint64_t cycles = 0;
    std::uint64_t stalls = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t pred_correct = 0;
    std::uint64_t mispredict = 0;
    std::uint64_t refill = 0;
    std::uint64_t decode = 0;
    std::uint64_t atb = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].index, i);
        cycles += records[i].cycles;
        stalls += records[i].stallCycles;
        l1_hits += records[i].l1Hit ? 1 : 0;
        pred_correct += records[i].predictionCorrect ? 1 : 0;
        // Per-record tiling of the stall-cause taxonomy.
        EXPECT_EQ(records[i].mispredictStall + records[i].refillStall +
                      records[i].decodeStall + records[i].atbStall,
                  records[i].stallCycles);
        mispredict += records[i].mispredictStall;
        refill += records[i].refillStall;
        decode += records[i].decodeStall;
        atb += records[i].atbStall;
    }
    EXPECT_EQ(cycles, stats.cycles);
    EXPECT_EQ(stalls, stats.stallCycles);
    EXPECT_EQ(l1_hits, stats.l1Hits);
    EXPECT_EQ(pred_correct, stats.predictionsCorrect);
    EXPECT_EQ(mispredict, stats.mispredictStallCycles);
    EXPECT_EQ(refill, stats.refillStallCycles);
    EXPECT_EQ(decode, stats.decodeStallCycles);
    EXPECT_EQ(atb, stats.atbStallCycles);

    // The stall histograms (total and per cause) saw every block.
    EXPECT_EQ(stats.stallHistogram.total(), stats.blocksFetched);
    EXPECT_EQ(stats.mispredictHistogram.total(), stats.blocksFetched);
    EXPECT_EQ(stats.refillHistogram.total(), stats.blocksFetched);
    EXPECT_EQ(stats.decodeHistogram.total(), stats.blocksFetched);
    EXPECT_EQ(stats.atbHistogram.total(), stats.blocksFetched);
}

/** The record stream is identical run to run (golden determinism). */
TEST(FetchTrace, Deterministic)
{
    fetch::FetchTraceOptions options;
    options.enabled = true;
    options.ringCapacity = 0;
    const auto first = runTracedFetch(options).trace.inOrder();
    const auto second = runTracedFetch(options).trace.inOrder();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].block, second[i].block);
        EXPECT_EQ(first[i].cycles, second[i].cycles);
        EXPECT_EQ(first[i].stallCycles, second[i].stallCycles);
        EXPECT_EQ(first[i].l1Hit, second[i].l1Hit);
    }
}

TEST(FetchTrace, RingKeepsNewestRecords)
{
    fetch::FetchTraceOptions options;
    options.enabled = true;
    options.ringCapacity = 8;
    const auto stats = runTracedFetch(options);
    ASSERT_GT(stats.blocksFetched, 8u) << "fir trace too short to "
                                          "exercise the ring";

    EXPECT_EQ(stats.trace.size(), 8u);
    EXPECT_EQ(stats.trace.recorded(), stats.blocksFetched);
    EXPECT_EQ(stats.trace.dropped(), stats.blocksFetched - 8u);

    // inOrder() unwinds the ring: the newest 8 events, oldest first.
    const auto records = stats.trace.inOrder();
    ASSERT_EQ(records.size(), 8u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].index, stats.blocksFetched - 8u + i);
}

TEST(FetchTrace, SamplingRecordsEveryNth)
{
    fetch::FetchTraceOptions options;
    options.enabled = true;
    options.ringCapacity = 0;
    options.sampleEvery = 4;
    const auto stats = runTracedFetch(options);

    const std::uint64_t expected = (stats.blocksFetched + 3) / 4;
    EXPECT_EQ(stats.trace.recorded(), expected);
    for (const auto &rec : stats.trace.inOrder())
        EXPECT_EQ(rec.index % 4, 0u);
    EXPECT_EQ(stats.stallHistogram.total(), expected);
}

TEST(FetchTrace, DisabledByDefault)
{
    const auto stats = runTracedFetch(fetch::FetchTraceOptions{});
    EXPECT_EQ(stats.trace.recorded(), 0u);
    EXPECT_EQ(stats.trace.size(), 0u);
    EXPECT_EQ(stats.stallHistogram.total(), 0u);
}

} // namespace
