/**
 * @file
 * Tests for the metrics registry (support/metrics) and the Histogram
 * merge semantics it builds on: per-section recording, ordered-merge
 * determinism (associativity under any grouping), the bounded
 * overflow bucket, JSON export round-tripped through the mini
 * parser, and the logging severity filter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>

#include "json_mini.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stats.hh"

namespace {

using tepic::support::Histogram;
using tepic::support::LogLevel;
using tepic::support::MetricsRegistry;
using tepic::support::ScalarStat;
using tepic::support::ScopedTimerMs;

TEST(Metrics, CountersAccumulate)
{
    MetricsRegistry m;
    m.addCounter("hits");
    m.addCounter("hits", 4);
    EXPECT_EQ(m.counter("hits"), 5u);
    EXPECT_EQ(m.counter("absent"), 0u);
}

TEST(Metrics, GaugesLastWriteWins)
{
    MetricsRegistry m;
    m.setGauge("ipc", 1.5);
    m.setGauge("ipc", 2.25);
    EXPECT_DOUBLE_EQ(m.gauge("ipc"), 2.25);
    EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);
}

TEST(Metrics, HistogramsAndTimings)
{
    MetricsRegistry m;
    m.sampleHistogram("stalls", 3, 2);
    m.sampleHistogram("stalls", 7);
    EXPECT_EQ(m.histogram("stalls").total(), 3u);
    EXPECT_EQ(m.histogram("absent").total(), 0u);

    m.recordTimingMs("phase", 10.0);
    m.recordTimingMs("phase", 20.0);
    EXPECT_EQ(m.timing("phase").count(), 2u);
    EXPECT_DOUBLE_EQ(m.timing("phase").mean(), 15.0);

    m.addRuntime("tasks", 9);
    EXPECT_EQ(m.runtime("tasks"), 9u);
}

TEST(Metrics, CounterPrefixQueries)
{
    MetricsRegistry m;
    m.addCounter("fetch.base.cycles", 10);
    m.addCounter("engine.compiles", 1);
    EXPECT_TRUE(m.hasCounterWithPrefix("fetch."));
    EXPECT_TRUE(m.hasCounterWithPrefix("engine."));
    EXPECT_FALSE(m.hasCounterWithPrefix("pool."));
    // "fetch.z" sorts after every "fetch.*" key: the lower_bound
    // probe must not report a stale neighbour.
    EXPECT_FALSE(m.hasCounterWithPrefix("fetch.z"));

    const auto names = m.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "engine.compiles");  // sorted
    EXPECT_EQ(names[1], "fetch.base.cycles");
}

TEST(Metrics, MergeFoldsEverySection)
{
    MetricsRegistry a;
    a.addCounter("hits", 2);
    a.setGauge("ipc", 1.0);
    a.sampleHistogram("stalls", 1);
    a.recordTimingMs("phase", 5.0);
    a.addRuntime("tasks", 3);

    MetricsRegistry b;
    b.addCounter("hits", 3);
    b.setGauge("ipc", 2.0);
    b.sampleHistogram("stalls", 1, 4);
    b.recordTimingMs("phase", 15.0);
    b.addRuntime("tasks", 4);

    a.merge(b);
    EXPECT_EQ(a.counter("hits"), 5u);
    EXPECT_DOUBLE_EQ(a.gauge("ipc"), 2.0);  // last write: the merged-in
    EXPECT_EQ(a.histogram("stalls").total(), 5u);
    EXPECT_EQ(a.timing("phase").count(), 2u);
    EXPECT_DOUBLE_EQ(a.timing("phase").max(), 15.0);
    EXPECT_EQ(a.runtime("tasks"), 7u);
}

/**
 * The ordered-reduction guarantee: merging per-task registries in any
 * grouping yields the same result — the exact property the parallel
 * engine relies on for deterministic --jobs output.
 */
TEST(Metrics, MergeAssociativity)
{
    const auto fill = [](MetricsRegistry &m, int salt) {
        m.addCounter("hits", std::uint64_t(salt));
        m.sampleHistogram("stalls", salt, 2);
        m.addRuntime("tasks", std::uint64_t(salt * 10));
    };

    // (a ⊕ b) ⊕ c
    MetricsRegistry left_a, left_b, left_c;
    fill(left_a, 1);
    fill(left_b, 2);
    fill(left_c, 3);
    left_a.merge(left_b);
    left_a.merge(left_c);

    // a ⊕ (b ⊕ c)
    MetricsRegistry right_a, right_b, right_c;
    fill(right_a, 1);
    fill(right_b, 2);
    fill(right_c, 3);
    right_b.merge(right_c);
    right_a.merge(right_b);

    EXPECT_EQ(left_a.toJson(), right_a.toJson());
}

TEST(Metrics, ClearAndEmpty)
{
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    m.addCounter("hits");
    EXPECT_FALSE(m.empty());
    m.clear();
    EXPECT_TRUE(m.empty());
}

TEST(Metrics, ScopedTimerRecordsOneSample)
{
    MetricsRegistry m;
    {
        ScopedTimerMs timer(m, "scoped");
    }
    EXPECT_EQ(m.timing("scoped").count(), 1u);
    EXPECT_GE(m.timing("scoped").min(), 0.0);
}

TEST(Metrics, JsonRoundTrip)
{
    MetricsRegistry m;
    m.addCounter("engine.cache_hits", 12);
    m.setGauge("fetch.ipc.\"quoted\"", 0.5);  // exercises escaping
    m.sampleHistogram("stalls", 2, 3);
    m.recordTimingMs("phase", 8.0);
    m.addRuntime("tasks", 4);

    const auto doc = tepic::testjson::parse(m.toJson());
    EXPECT_EQ(doc.at("schema").str, "tepic-metrics-v1");
    EXPECT_EQ(doc.at("counters").at("engine.cache_hits").number, 12.0);
    EXPECT_DOUBLE_EQ(
        doc.at("gauges").at("fetch.ipc.\"quoted\"").number, 0.5);

    const auto &hist = doc.at("histograms").at("stalls");
    EXPECT_EQ(hist.at("total").number, 3.0);
    ASSERT_EQ(hist.at("bins").array.size(), 1u);
    EXPECT_EQ(hist.at("bins").array[0].array[0].number, 2.0);
    EXPECT_EQ(hist.at("bins").array[0].array[1].number, 3.0);

    EXPECT_EQ(doc.at("timings").at("phase").at("count").number, 1.0);
    EXPECT_EQ(doc.at("timings").at("phase").at("sum").number, 8.0);
    EXPECT_EQ(doc.at("runtime").at("tasks").number, 4.0);
}

TEST(Metrics, EmptyRegistryJsonHasAllSections)
{
    MetricsRegistry m;
    const auto doc = tepic::testjson::parse(m.toJson());
    for (const char *section :
         {"counters", "gauges", "histograms", "timings", "runtime"}) {
        ASSERT_TRUE(doc.has(section)) << section;
        EXPECT_TRUE(doc.at(section).object.empty()) << section;
    }
}

TEST(Metrics, WriteJsonFile)
{
    MetricsRegistry m;
    m.addCounter("hits", 7);
    const std::string path = "test_metrics_out.json";
    ASSERT_TRUE(m.writeJsonFile(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = tepic::testjson::parse(buffer.str());
    EXPECT_EQ(doc.at("counters").at("hits").number, 7.0);
    std::remove(path.c_str());
}

// --- Histogram merge semantics (the registry's reduction primitive)

TEST(HistogramMerge, EmptyOperands)
{
    Histogram empty;
    Histogram filled;
    filled.sample(2, 3);

    Histogram into_filled = filled;
    into_filled.merge(empty);
    EXPECT_EQ(into_filled.total(), 3u);
    EXPECT_EQ(into_filled.bins().at(2), 3u);

    Histogram into_empty;
    into_empty.merge(filled);
    EXPECT_EQ(into_empty.total(), 3u);
    EXPECT_EQ(into_empty.bins().at(2), 3u);
}

TEST(HistogramMerge, OverflowBucket)
{
    Histogram h(4);  // keys >= 4 overflow
    h.sample(1);
    h.sample(3);
    h.sample(4, 2);
    h.sample(100);
    EXPECT_TRUE(h.bounded());
    EXPECT_EQ(h.overflowThreshold(), 4);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_EQ(h.bins().size(), 2u);  // only 1 and 3 materialized
    // Overflow counts at the threshold in the mean.
    EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 4.0 * 3.0) / 5.0);
}

TEST(HistogramMerge, MixedThresholdsTakeTighter)
{
    Histogram loose(10);
    loose.sample(7, 2);
    loose.sample(12);  // overflows at 10

    Histogram tight(5);
    tight.sample(3);
    tight.sample(8);  // overflows at 5

    loose.merge(tight);
    EXPECT_EQ(loose.overflowThreshold(), 5);
    // The 7s recorded under the loose bound are re-clamped.
    EXPECT_EQ(loose.overflow(), 4u);  // 7,7,12 + tight's 8
    EXPECT_EQ(loose.bins().at(3), 1u);
    EXPECT_EQ(loose.total(), 5u);
}

TEST(HistogramMerge, UnboundedAdoptsBound)
{
    Histogram unbounded;
    unbounded.sample(7);
    Histogram bounded(5);
    bounded.sample(1);

    unbounded.merge(bounded);
    EXPECT_TRUE(unbounded.bounded());
    EXPECT_EQ(unbounded.overflowThreshold(), 5);
    EXPECT_EQ(unbounded.overflow(), 1u);  // the 7 re-clamped
    EXPECT_EQ(unbounded.total(), 2u);
}

TEST(HistogramMerge, SelfMergeDoubles)
{
    Histogram h(4);
    h.sample(1, 2);
    h.sample(9);  // overflow
    h.merge(h);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bins().at(1), 4u);
}

TEST(HistogramMerge, AssociativeAcrossMixedBounds)
{
    const auto render = [](const Histogram &h) {
        std::string out = std::to_string(h.total()) + "/" +
                          std::to_string(h.overflow()) + "/" +
                          std::to_string(h.bounded() ?
                                         h.overflowThreshold() : -1);
        for (const auto &[k, w] : h.bins())
            out += ":" + std::to_string(k) + "=" + std::to_string(w);
        return out;
    };

    Histogram a;       // unbounded
    a.sample(2, 2);
    a.sample(11);
    Histogram b(10);
    b.sample(6);
    b.sample(15);
    Histogram c(5);
    c.sample(1);
    c.sample(7);

    Histogram left = a;   // (a ⊕ b) ⊕ c
    left.merge(b);
    left.merge(c);

    Histogram right_bc = b;  // a ⊕ (b ⊕ c)
    right_bc.merge(c);
    Histogram right = a;
    right.merge(right_bc);

    EXPECT_EQ(render(left), render(right));
    EXPECT_EQ(left.overflowThreshold(), 5);
}

// --- logging severity levels (satellite of the observability layer)

TEST(Logging, ParseLevels)
{
    EXPECT_EQ(tepic::support::parseLogLevel("debug"), LogLevel::kDebug);
    EXPECT_EQ(tepic::support::parseLogLevel("info"), LogLevel::kInfo);
    EXPECT_EQ(tepic::support::parseLogLevel("warn"), LogLevel::kWarn);
    EXPECT_EQ(tepic::support::parseLogLevel("error"), LogLevel::kError);
    EXPECT_EQ(tepic::support::parseLogLevel("none"), LogLevel::kNone);
    // Unknown (or unset) falls back to the info default.
    EXPECT_EQ(tepic::support::parseLogLevel("bogus"), LogLevel::kInfo);
    EXPECT_EQ(tepic::support::parseLogLevel(nullptr), LogLevel::kInfo);
}

TEST(Logging, ThresholdFiltering)
{
    // The threshold is parsed from $TEPIC_LOG once; whatever it is,
    // the ordering contract must hold.
    const LogLevel threshold = tepic::support::logThreshold();
    for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                           LogLevel::kWarn, LogLevel::kError}) {
        EXPECT_EQ(tepic::support::logEnabled(level),
                  int(level) >= int(threshold));
    }
}

TEST(Metrics, JsonQuoteEscapes)
{
    EXPECT_EQ(tepic::support::jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(tepic::support::jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(tepic::support::jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(tepic::support::jsonQuote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(tepic::support::jsonQuote(std::string("a\x01") + "b"),
              "\"a\\u0001b\"");
}

} // namespace
