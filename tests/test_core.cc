/**
 * @file
 * Integration tests over the core pipeline: full artefact builds with
 * round-trip verification, summary consistency, the fetch-simulation
 * shape properties the paper's conclusions rest on, and the ATT
 * overhead accounting of Figure 7.
 */

#include <gtest/gtest.h>

#include "core/artifact_engine.hh"
#include "fetch/att.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
using core::Artifacts;
using fetch::SchemeClass;

/** Shared engine: repeated fixture access is a cache hit. */
core::ArtifactEngine &
testEngine()
{
    static core::ArtifactEngine engine;
    return engine;
}

const Artifacts &
gccArtifacts()
{
    static const std::shared_ptr<const Artifacts> artifacts =
        testEngine().build(workloads::workloadByName("gcc").source);
    return *artifacts;
}

const Artifacts &
firArtifacts()
{
    static const std::shared_ptr<const Artifacts> artifacts =
        testEngine().build(workloads::workloadByName("fir").source);
    return *artifacts;
}

TEST(CorePipeline, RoundTripsAllSchemes)
{
    core::verifyRoundTrips(gccArtifacts());
    core::verifyRoundTrips(firArtifacts());
}

TEST(CorePipeline, SummariesAreConsistent)
{
    const auto rows = core::summarise(gccArtifacts());
    // base + byte + 6 streams + full + tailored.
    ASSERT_EQ(rows.size(), 10u);
    EXPECT_EQ(rows.front().name, "base");
    EXPECT_DOUBLE_EQ(rows.front().ratioVsBase, 1.0);
    EXPECT_EQ(rows.front().decoderTransistors, 0u);
    for (const auto &row : rows) {
        EXPECT_GT(row.codeBits, 0u);
        if (row.name != "base") {
            EXPECT_LT(row.ratioVsBase, 1.0) << row.name;
            EXPECT_GT(row.decoderTransistors, 0u) << row.name;
        }
    }
}

TEST(CorePipeline, Figure5SizeOrdering)
{
    const auto &a = gccArtifacts();
    const double full = a.ratio(a.fullImage().image);
    const double byte = a.ratio(a.byteImage().image);
    const double tailored = a.ratio(a.tailoredImage());
    // Full is the best compressor; everything beats base.
    EXPECT_LT(full, tailored);
    EXPECT_LT(full, byte);
    EXPECT_LT(tailored, 1.0);
    EXPECT_LT(byte, 1.0);
    for (const auto &stream : a.streamImages())
        EXPECT_LT(full, a.ratio(stream.image) + 1e-12)
            << stream.streamConfig.name;
}

TEST(CorePipeline, StreamSelectionHelpers)
{
    const auto &a = gccArtifacts();
    const std::size_t by_size = a.bestStreamBySize();
    const std::size_t by_decoder = a.bestStreamByDecoder();
    for (std::size_t i = 0; i < a.streamImages().size(); ++i) {
        EXPECT_LE(a.streamImage(by_size).image.bitSize,
                  a.streamImage(i).image.bitSize);
    }
    EXPECT_LT(by_decoder, a.streamImages().size());
}

TEST(CorePipeline, Figure13IpcShape)
{
    const auto &a = gccArtifacts();
    const auto base = core::runFetch(a, SchemeClass::kBase);
    const auto tailored = core::runFetch(a, SchemeClass::kTailored);
    const auto compressed = core::runFetch(a, SchemeClass::kCompressed);

    // Everything is bounded by ideal.
    EXPECT_LE(base.ipc(), base.idealIpc());
    EXPECT_LE(tailored.ipc(), tailored.idealIpc());
    EXPECT_LE(compressed.ipc(), compressed.idealIpc());
    // All schemes deliver the same dynamic op stream.
    EXPECT_EQ(base.opsDelivered, tailored.opsDelivered);
    EXPECT_EQ(base.opsDelivered, compressed.opsDelivered);
    // Denser images cannot hit less: tailored and compressed images
    // are strictly smaller, so their line working sets are smaller.
    EXPECT_GE(tailored.l1HitRate(), base.l1HitRate() - 1e-9);
    EXPECT_GE(compressed.l1HitRate(), tailored.l1HitRate() - 1e-9);
    // gcc's footprint exceeds the cache: the capacity advantage must
    // put tailored above base (the paper's headline claim).
    EXPECT_GT(tailored.ipc(), base.ipc());
}

TEST(CorePipeline, Figure14BitFlipsTrackCompression)
{
    const auto &a = gccArtifacts();
    const auto base = core::runFetch(a, SchemeClass::kBase);
    const auto tailored = core::runFetch(a, SchemeClass::kTailored);
    const auto compressed = core::runFetch(a, SchemeClass::kCompressed);
    EXPECT_LT(tailored.busBitFlips, base.busBitFlips);
    EXPECT_LT(compressed.busBitFlips, tailored.busBitFlips);
}

TEST(CorePipeline, DspKernelLivesInTheBuffer)
{
    // The paper's §4 claim: DSP kernels fit the 32-op L0 buffer and
    // run at uncompressed speed under the compressed scheme.
    const auto &a = firArtifacts();
    const auto base = core::runFetch(a, SchemeClass::kBase);
    const auto compressed = core::runFetch(a, SchemeClass::kCompressed);
    const double l0_rate = double(compressed.l0Hits) /
                           double(compressed.l0Hits +
                                  compressed.l0Misses);
    EXPECT_GT(l0_rate, 0.8);
    EXPECT_GT(compressed.ipc(), 0.97 * base.ipc());
}

TEST(CorePipeline, AttOverheadIsModest)
{
    // Figure 7: the ATT adds roughly 15.5% to the (original) image.
    // Our entry model lands in the same regime.
    const auto &a = gccArtifacts();
    const auto att =
        fetch::Att::build(a.fullImage().image, a.compiled.program);
    const double vs_original =
        att.overheadVs(a.compiled.program.baselineBits());
    EXPECT_GT(vs_original, 0.02);
    EXPECT_LT(vs_original, 0.30);
}

TEST(CorePipeline, ImageForSelectsTheRightImage)
{
    const auto &a = gccArtifacts();
    EXPECT_EQ(&core::imageFor(a, SchemeClass::kBase),
              &a.baseImage());
    EXPECT_EQ(&core::imageFor(a, SchemeClass::kCompressed),
              &a.fullImage().image);
    EXPECT_EQ(&core::imageFor(a, SchemeClass::kTailored),
              &a.tailoredImage());
}

TEST(CorePipeline, NonProfileGuidedStillWorks)
{
    core::PipelineConfig config;
    config.profileGuided = false;
    const auto a = core::ArtifactEngine::buildUncached(
        workloads::workloadByName("matmul").source,
        core::ArtifactRequest::all().without(
            core::ArtifactKind::kStream),
        config);
    EXPECT_FALSE(a.has(core::ArtifactKind::kStream));
    EXPECT_EQ(a.execution.exitValue,
              workloads::workloadByName("matmul").reference());
    core::verifyRoundTrips(a);
}

} // namespace
