/**
 * @file
 * End-to-end smoke tests: tinkerc source -> compiled VLIW program ->
 * emulated execution, checking exit values against hand-computed
 * results. These tests gate everything downstream (all compression and
 * fetch experiments consume compiled programs).
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "sim/emulator.hh"

namespace {

using tepic::compiler::compileSource;
using tepic::compiler::CompileOptions;

std::int32_t
runProgram(const std::string &source)
{
    auto compiled = compileSource(source);
    auto result = tepic::sim::emulate(compiled.program, compiled.data);
    return result.exitValue;
}

TEST(CompileSmoke, ReturnsConstant)
{
    EXPECT_EQ(runProgram("func main(): int { return 42; }"), 42);
}

TEST(CompileSmoke, Arithmetic)
{
    EXPECT_EQ(runProgram(
        "func main(): int { return (3 + 4) * 5 - 6 / 2; }"), 32);
}

TEST(CompileSmoke, VariablesAndAssignment)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var a = 10;
            var b = a * 3;
            a = b - 5;
            return a + b;
        }
    )"), 55);
}

TEST(CompileSmoke, IfElse)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var x = 7;
            if (x > 5) { x = x * 2; } else { x = 0; }
            return x;
        }
    )"), 14);
}

TEST(CompileSmoke, WhileLoopSum)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var sum = 0;
            var i = 1;
            while (i <= 100) { sum = sum + i; i = i + 1; }
            return sum;
        }
    )"), 5050);
}

TEST(CompileSmoke, ForLoopFactorial)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var f = 1;
            for (var i = 2; i <= 10; i = i + 1) { f = f * i; }
            return f;
        }
    )"), 3628800);
}

TEST(CompileSmoke, FunctionCall)
{
    EXPECT_EQ(runProgram(R"(
        func add3(a, b, c): int { return a + b + c; }
        func main(): int { return add3(1, 2, 3) + add3(10, 20, 30); }
    )"), 66);
}

TEST(CompileSmoke, Recursion)
{
    EXPECT_EQ(runProgram(R"(
        func fib(n): int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main(): int { return fib(15); }
    )"), 610);
}

TEST(CompileSmoke, GlobalsAndArrays)
{
    EXPECT_EQ(runProgram(R"(
        var table[10];
        var total = 0;
        func main(): int {
            for (var i = 0; i < 10; i = i + 1) { table[i] = i * i; }
            for (var i = 0; i < 10; i = i + 1) {
                total = total + table[i];
            }
            return total;
        }
    )"), 285);
}

TEST(CompileSmoke, LocalArrays)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var buf[16];
            for (var i = 0; i < 16; i = i + 1) { buf[i] = i + 1; }
            var acc = 0;
            for (var i = 0; i < 16; i = i + 1) { acc = acc + buf[i]; }
            return acc;
        }
    )"), 136);
}

TEST(CompileSmoke, ShortCircuit)
{
    EXPECT_EQ(runProgram(R"(
        var hits = 0;
        func bump(): int { hits = hits + 1; return 1; }
        func main(): int {
            var a = 0;
            if (a && bump()) { return 100; }
            if (1 || bump()) {
                return hits;  // both short-circuits: hits stays 0
            }
            return 50;
        }
    )"), 0);
}

TEST(CompileSmoke, BitwiseAndShifts)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var x = 0xF0F0;
            var y = (x >> 4) & 0xFF;
            var z = (y << 8) | 15;
            return z ^ 1;
        }
    )"), (((0xF0F0 >> 4) & 0xFF) << 8 | 15) ^ 1);
}

TEST(CompileSmoke, FloatArithmetic)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var x: float = 1.5;
            var y: float = 2.25;
            var z: float = x * y + 0.75;
            return int(z * 4.0);
        }
    )"), 16);  // (1.5*2.25 + 0.75) * 4 = 16.5 -> truncates to 16
}

TEST(CompileSmoke, FloatCompareAndConvert)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var a: float = 3.0;
            var b: float = 4.0;
            var count = 0;
            if (a < b) { count = count + 1; }
            if (b <= 4.0) { count = count + 1; }
            if (a == 3.0) { count = count + 1; }
            if (a > b) { count = count + 100; }
            return count + int(float(10) / 4.0);
        }
    )"), 5);  // 3 + int(2.5)
}

TEST(CompileSmoke, BreakContinue)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 20) { break; }
                s = s + i;
            }
            return s;
        }
    )"), 1 + 3 + 5 + 7 + 9 + 11 + 13 + 15 + 17 + 19);
}

TEST(CompileSmoke, NegativeNumbersAndUnary)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var a = -7;
            var b = ~a;      // 6
            var c = !b;      // 0
            var d = !c;      // 1
            return a + b * 10 + c + d * 100;
        }
    )"), -7 + 60 + 0 + 100);
}

TEST(CompileSmoke, LargeConstants)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var big = 1000000;
            var huge = 0x7FFFFFFF;
            return big % 97 + (huge & 0xFF);
        }
    )"), 1000000 % 97 + 0xFF);
}

TEST(CompileSmoke, DeepCallChainSpills)
{
    // Forces register pressure across calls (callee-saved + spills).
    EXPECT_EQ(runProgram(R"(
        func leaf(x): int { return x * 2 + 1; }
        func main(): int {
            var a = 1; var b = 2; var c = 3; var d = 4;
            var e = 5; var f = 6; var g = 7; var h = 8;
            var i = 9; var j = 10; var k = 11; var l = 12;
            var m = 13; var n = 14; var o = 15; var p = 16;
            var q = leaf(a + p);
            var r = leaf(b + o);
            var s = leaf(c + n);
            return a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p + q+r+s
                   + leaf(q + r + s);
        }
    )"), 1+2+3+4+5+6+7+8+9+10+11+12+13+14+15+16 + 35+35+35
         + (35*3*2 + 1));
}

TEST(CompileSmoke, MixedIntFloatPromotion)
{
    EXPECT_EQ(runProgram(R"(
        func main(): int {
            var n = 7;
            var x: float = n / 2;     // int division first: 3
            var y: float = n / 2.0;   // promoted: 3.5
            return int(x * 10.0) + int(y * 10.0);
        }
    )"), 30 + 35);
}

TEST(CompileSmoke, ProfileGuidedRelayoutKeepsSemantics)
{
    const std::string source = R"(
        func collatz(n): int {
            var steps = 0;
            while (n != 1) {
                if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
                steps = steps + 1;
            }
            return steps;
        }
        func main(): int {
            var total = 0;
            for (var i = 1; i < 50; i = i + 1) {
                total = total + collatz(i);
            }
            return total;
        }
    )";
    auto compiled = compileSource(source);
    auto first = tepic::sim::emulate(compiled.program, compiled.data);
    tepic::compiler::applyProfileAndRelayout(
        compiled, first.blockCounts,
        tepic::isa::MachineConfig::paperDefault());
    auto second = tepic::sim::emulate(compiled.program, compiled.data);
    EXPECT_EQ(first.exitValue, second.exitValue);
    // Profile-guided layout straightens hot paths, so the dynamic op
    // count may only drop (fewer unconditional jumps executed).
    EXPECT_LE(second.dynamicOps, first.dynamicOps);
}

TEST(CompileSmoke, TraceIsConsistent)
{
    auto compiled = compileSource(R"(
        func main(): int {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) { s = s + i; }
            return s;
        }
    )");
    auto result = tepic::sim::emulate(compiled.program, compiled.data);
    EXPECT_EQ(result.exitValue, 45);
    ASSERT_FALSE(result.trace.events.empty());
    // Every event's `next` matches the following event's block.
    for (std::size_t i = 0; i + 1 < result.trace.events.size(); ++i) {
        EXPECT_EQ(result.trace.events[i].next,
                  result.trace.events[i + 1].block);
    }
    EXPECT_EQ(result.trace.events.front().block,
              compiled.program.entry());
    // Block counts agree with the trace.
    std::vector<std::uint64_t> counts(compiled.program.blocks().size());
    for (const auto &ev : result.trace.events)
        ++counts[ev.block];
    EXPECT_EQ(counts, result.blockCounts);
}

} // namespace
