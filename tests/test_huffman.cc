/**
 * @file
 * Huffman engine tests: package-merge length-limited codes, canonical
 * assignment, prefix-freeness, round trips and entropy bounds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "huffman/huffman.hh"
#include "support/bitstream.hh"
#include "support/rng.hh"

namespace {

using tepic::huffman::CodeTable;
using tepic::huffman::packageMergeLengths;
using tepic::huffman::SymbolHistogram;

TEST(PackageMerge, SingleSymbol)
{
    const auto lengths = packageMergeLengths({42}, 16);
    ASSERT_EQ(lengths.size(), 1u);
    EXPECT_EQ(lengths[0], 1u);
}

TEST(PackageMerge, TwoSymbols)
{
    const auto lengths = packageMergeLengths({1, 1000}, 16);
    EXPECT_EQ(lengths[0], 1u);
    EXPECT_EQ(lengths[1], 1u);
}

TEST(PackageMerge, ClassicExample)
{
    // Freqs 1,1,2,3,5 -> unbounded Huffman lengths 4,4,3,2,1 (or an
    // equivalent-cost assignment).
    const auto lengths = packageMergeLengths({1, 1, 2, 3, 5}, 16);
    std::uint64_t cost = 0;
    const std::uint64_t freqs[] = {1, 1, 2, 3, 5};
    for (std::size_t i = 0; i < 5; ++i)
        cost += freqs[i] * lengths[i];
    EXPECT_EQ(cost, 1 * 4 + 1 * 4 + 2 * 3 + 3 * 2 + 5 * 1);
}

TEST(PackageMerge, RespectsTheBound)
{
    // A Fibonacci-like distribution forces long unbounded codes.
    std::vector<std::uint64_t> freqs;
    std::uint64_t a = 1;
    std::uint64_t b = 1;
    for (int i = 0; i < 24; ++i) {
        freqs.push_back(a);
        const std::uint64_t next = a + b;
        a = b;
        b = next;
    }
    for (unsigned bound : {6u, 8u, 12u, 16u}) {
        const auto lengths = packageMergeLengths(freqs, bound);
        for (auto len : lengths) {
            EXPECT_GE(len, 1u);
            EXPECT_LE(len, bound);
        }
    }
}

TEST(PackageMerge, KraftInequalityHolds)
{
    tepic::support::Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint64_t> freqs;
        const int n = int(rng.range(2, 300));
        for (int i = 0; i < n; ++i)
            freqs.push_back(rng.below(10000) + 1);
        const auto lengths = packageMergeLengths(freqs, 16);
        double kraft = 0.0;
        for (auto len : lengths)
            kraft += std::ldexp(1.0, -int(len));
        EXPECT_LE(kraft, 1.0 + 1e-9);
    }
}

TEST(PackageMerge, TighterBoundNeverBeatsLooser)
{
    std::vector<std::uint64_t> freqs;
    tepic::support::Rng rng(17);
    for (int i = 0; i < 100; ++i)
        freqs.push_back(rng.below(5000) + 1);
    auto cost = [&](unsigned bound) {
        const auto lengths = packageMergeLengths(freqs, bound);
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < freqs.size(); ++i)
            total += freqs[i] * lengths[i];
        return total;
    };
    EXPECT_GE(cost(7), cost(10));
    EXPECT_GE(cost(10), cost(16));
}

TEST(CodeTable, CanonicalCodesArePrefixFree)
{
    SymbolHistogram hist;
    tepic::support::Rng rng(3);
    for (int i = 0; i < 200; ++i)
        hist.add(std::uint64_t(i), rng.below(1000) + 1);
    const CodeTable table = CodeTable::build(hist, 16);
    const auto &entries = table.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        for (std::size_t j = i + 1; j < entries.size(); ++j) {
            const auto &a = entries[i];
            const auto &b = entries[j];
            const unsigned min_len = std::min(a.length, b.length);
            EXPECT_NE(a.code >> (a.length - min_len),
                      b.code >> (b.length - min_len))
                << "codes for symbols " << a.symbol << " and "
                << b.symbol << " collide as prefixes";
        }
    }
}

TEST(CodeTable, EncodeDecodeRoundTrip)
{
    SymbolHistogram hist;
    hist.add(10, 100);
    hist.add(20, 30);
    hist.add(30, 1);
    const CodeTable table = CodeTable::build(hist, 8);

    tepic::support::BitWriter writer;
    const std::uint64_t message[] = {10, 30, 10, 20, 10, 10, 30};
    for (auto sym : message)
        table.encode(sym, writer);
    tepic::support::BitReader reader(writer.bytes().data(),
                                     writer.bitSize());
    for (auto sym : message)
        EXPECT_EQ(table.decode(reader), sym);
}

TEST(CodeTable, FrequentSymbolsGetShorterCodes)
{
    SymbolHistogram hist;
    hist.add(1, 1000000);
    hist.add(2, 10);
    hist.add(3, 10);
    hist.add(4, 1);
    const CodeTable table = CodeTable::build(hist, 16);
    EXPECT_LT(table.codeLength(1), table.codeLength(4));
    EXPECT_EQ(table.codeLength(1), 1u);
}

TEST(CodeTable, UnknownSymbolPanics)
{
    SymbolHistogram hist;
    hist.add(1, 1);
    hist.add(2, 1);
    const CodeTable table = CodeTable::build(hist, 8);
    tepic::support::BitWriter writer;
    EXPECT_ANY_THROW(table.encode(99, writer));
    EXPECT_ANY_THROW(table.codeLength(99));
}

TEST(CodeTable, EncodedBitsMatchesManualSum)
{
    SymbolHistogram hist;
    hist.add(7, 5);
    hist.add(8, 3);
    hist.add(9, 2);
    const CodeTable table = CodeTable::build(hist, 8);
    std::uint64_t manual = 0;
    manual += 5 * table.codeLength(7);
    manual += 3 * table.codeLength(8);
    manual += 2 * table.codeLength(9);
    EXPECT_EQ(table.encodedBits(hist), manual);
}

TEST(Histogram, Entropy)
{
    SymbolHistogram hist;
    hist.add(0, 1);
    hist.add(1, 1);
    EXPECT_NEAR(hist.entropyBits(), 1.0, 1e-12);
    SymbolHistogram skew;
    skew.add(0, 1);
    EXPECT_NEAR(skew.entropyBits(), 0.0, 1e-12);
}

/** Property: random histograms round-trip and sit near entropy. */
class HuffmanProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HuffmanProperty, RoundTripAndEntropyBound)
{
    tepic::support::Rng rng(std::uint64_t(GetParam()) * 104729 + 7);
    SymbolHistogram hist;
    const int n = int(rng.range(2, 400));
    for (int i = 0; i < n; ++i)
        hist.add(rng.next() & 0xffff, rng.below(5000) + 1);
    const CodeTable table = CodeTable::build(hist, 16);

    // Average code length within [H, H+1) for unbounded Huffman; the
    // 16-bit bound can add a little, so allow slack.
    const double total = double(hist.totalCount());
    const double avg = double(table.encodedBits(hist)) / total;
    EXPECT_GE(avg + 1e-9, hist.entropyBits());
    EXPECT_LE(avg, hist.entropyBits() + 1.5);

    // Encode a random message and decode it back.
    std::vector<std::uint64_t> symbols;
    for (const auto &[sym, count] : hist.counts())
        symbols.push_back(sym);
    tepic::support::BitWriter writer;
    std::vector<std::uint64_t> message;
    for (int i = 0; i < 1000; ++i) {
        const auto sym = symbols[rng.below(symbols.size())];
        message.push_back(sym);
        table.encode(sym, writer);
    }
    tepic::support::BitReader reader(writer.bytes().data(),
                                     writer.bitSize());
    for (auto sym : message)
        ASSERT_EQ(table.decode(reader), sym);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanProperty,
                         ::testing::Range(0, 12));

} // namespace
