/**
 * @file
 * Unit tests for the support substrate: bit streams, statistics,
 * text tables and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "support/bitstream.hh"
#include "support/keys.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace {

using tepic::support::BitReader;
using tepic::support::BitWriter;

// Key stability: these suffixes appear in committed report baselines
// (cache/hot session stores) and in sweep configuration keys — the
// exact spelling is a contract, not a formatting choice.
TEST(ShapeKeys, UntaggedGeometrySuffix)
{
    EXPECT_EQ(tepic::support::shapeSuffix({{"", 256}, {"", 2},
                                           {"", 32}}),
              "@256x2x32");
    EXPECT_EQ(tepic::support::shapeSuffix({{"", 64}, {"", 1},
                                           {"", 64}}),
              "@64x1x64");
}

TEST(ShapeKeys, TaggedShapeSuffix)
{
    EXPECT_EQ(tepic::support::shapeSuffix({{"B", 12}, {"E", 16}}),
              "@B12xE16");
    EXPECT_EQ(tepic::support::shapeSuffix({{"S", 128}, {"W", 4},
                                           {"L", 64}}),
              "@S128xW4xL64");
}

TEST(ShapeKeys, DegenerateDimensions)
{
    EXPECT_EQ(tepic::support::shapeSuffix({}), "@");
    EXPECT_EQ(tepic::support::shapeSuffix({{"N", 0}}), "@N0");
}

TEST(BitStream, SingleBits)
{
    BitWriter w;
    w.writeBit(true);
    w.writeBit(false);
    w.writeBit(true);
    EXPECT_EQ(w.bitSize(), 3u);
    EXPECT_EQ(w.byteSize(), 1u);
    EXPECT_EQ(w.bytes()[0], 0b10100000);

    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_TRUE(r.readBit());
    EXPECT_FALSE(r.readBit());
    EXPECT_TRUE(r.readBit());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitStream, MsbFirstFieldOrder)
{
    BitWriter w;
    w.writeBits(0b101, 3);
    w.writeBits(0xff, 8);
    w.writeBits(0, 5);
    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_EQ(r.readBits(3), 0b101u);
    EXPECT_EQ(r.readBits(8), 0xffu);
    EXPECT_EQ(r.readBits(5), 0u);
}

TEST(BitStream, ByteAlignment)
{
    BitWriter w;
    w.writeBits(1, 1);
    w.alignToByte();
    EXPECT_EQ(w.bitSize(), 8u);
    w.writeBits(0xab, 8);
    EXPECT_EQ(w.bytes()[1], 0xab);
    w.alignToByte();
    EXPECT_EQ(w.bitSize(), 16u);  // already aligned: no-op
}

TEST(BitStream, SeekAndReread)
{
    BitWriter w;
    w.writeBits(0x1234, 16);
    w.writeBits(0x5678, 16);
    BitReader r(w.bytes().data(), w.bitSize());
    r.seek(16);
    EXPECT_EQ(r.readBits(16), 0x5678u);
    r.seek(0);
    EXPECT_EQ(r.readBits(16), 0x1234u);
}

TEST(BitStream, SixtyFourBitValues)
{
    BitWriter w;
    const std::uint64_t value = 0xdeadbeefcafebabeull;
    w.writeBits(value, 64);
    BitReader r(w.bytes().data(), w.bitSize());
    EXPECT_EQ(r.readBits(64), value);
}

TEST(BitStream, OverrunPanics)
{
    BitWriter w;
    w.writeBits(3, 2);
    BitReader r(w.bytes().data(), w.bitSize());
    r.readBits(2);
    EXPECT_ANY_THROW(r.readBits(1));
}

TEST(BitStream, ValueWiderThanFieldPanics)
{
    BitWriter w;
    EXPECT_ANY_THROW(w.writeBits(4, 2));
}

/** Property: any sequence of (value,width) fields round-trips. */
class BitStreamRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(BitStreamRoundTrip, RandomFields)
{
    tepic::support::Rng rng(std::uint64_t(GetParam()) * 7919 + 1);
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 500; ++i) {
        const unsigned width = unsigned(rng.range(1, 64));
        const std::uint64_t value = width == 64
            ? rng.next()
            : rng.next() & ((std::uint64_t(1) << width) - 1);
        fields.emplace_back(value, width);
        w.writeBits(value, width);
    }
    BitReader r(w.bytes().data(), w.bitSize());
    for (const auto &[value, width] : fields)
        EXPECT_EQ(r.readBits(width), value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStreamRoundTrip,
                         ::testing::Range(0, 8));

TEST(Stats, ScalarStat)
{
    tepic::support::ScalarStat s;
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(9.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Histogram)
{
    tepic::support::Histogram h;
    h.sample(1, 2);
    h.sample(3, 2);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Stats, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(tepic::support::median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(tepic::support::median({4.0, 1.0, 2.0, 3.0}),
                     2.5);
    EXPECT_DOUBLE_EQ(tepic::support::median({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(tepic::support::geomean({2.0, 8.0}), 4.0);
    EXPECT_ANY_THROW(tepic::support::geomean({1.0, -1.0}));
}

TEST(Rng, DeterministicAndBounded)
{
    tepic::support::Rng a(42);
    tepic::support::Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    tepic::support::Rng c(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = c.below(10);
        EXPECT_LT(v, 10u);
        const auto r = c.range(-5, 5);
        EXPECT_GE(r, -5);
        EXPECT_LE(r, 5);
    }
    EXPECT_FALSE(c.chance(0.0));
    EXPECT_TRUE(c.chance(1.0));
}

TEST(TextTable, RendersAligned)
{
    tepic::support::TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2     |"), std::string::npos);
}

TEST(TextTable, Formatting)
{
    EXPECT_EQ(tepic::support::TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(tepic::support::TextTable::percent(0.643, 1), "64.3%");
}

TEST(TextTable, RowArityChecked)
{
    tepic::support::TextTable t;
    t.setHeader({"a", "b"});
    EXPECT_ANY_THROW(t.addRow({"only-one"}));
}

} // namespace
