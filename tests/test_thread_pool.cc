/**
 * @file
 * Unit tests for support::ThreadPool — the invariants the artifact
 * engine relies on: submit() is safe from inside a task, exceptions
 * travel through futures and parallelFor, and destruction drains the
 * queue rather than dropping it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hh"

namespace {

using tepic::support::ThreadPool;

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[std::size_t(i)].get(), i * i);
}

TEST(ThreadPool, HardwareThreadsIsNeverZero)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, SubmitFromInsideATask)
{
    // The engine's scheme tasks are enqueued while compile tasks are
    // still executing; submit() must be safe from worker threads.
    ThreadPool pool(2);
    auto outer = pool.submit([&pool] {
        auto inner = pool.submit([] { return 21; });
        // Note: waiting on the inner future here could deadlock a
        // full pool, so hand it back to the caller instead.
        return inner;
    });
    auto inner = outer.get();
    EXPECT_EQ(inner.get(), 21);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);

    // The worker that ran the throwing task must still be alive.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    constexpr std::size_t kCount = 257;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount,
                     [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForRethrowsFirstExceptionByIndex)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        pool.parallelFor(64, [&ran](std::size_t i) {
            ran.fetch_add(1);
            if (i == 5 || i == 40)
                throw std::out_of_range(std::to_string(i));
        });
        FAIL() << "parallelFor swallowed the exception";
    } catch (const std::out_of_range &e) {
        // Deterministic choice: the lowest-index failure wins, no
        // matter which worker hit its exception first.
        EXPECT_STREQ(e.what(), "5");
    }
    // Every iteration still ran; one failure doesn't cancel the rest.
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedWork)
{
    std::atomic<int> done{0};
    constexpr int kTasks = 200;
    {
        ThreadPool pool(2);
        for (int i = 0; i < kTasks; ++i)
            pool.submit([&done] { done.fetch_add(1); });
        // Destructor runs here with most of the queue still pending.
    }
    EXPECT_EQ(done.load(), kTasks);
}

} // namespace
