/**
 * @file
 * Tests for support::sched — task-graph scheduling observability.
 * Covers the recording primitives (declaration-order ids, sentinel
 * dependency dropping, session gating), the analysis invariants the
 * tepic-sched-v1 schema promises (DAG acyclicity, duration-weighted
 * critical path, per-worker timelines that tile the build window),
 * the determinism contract (the report's "structure" section is
 * byte-identical for any --jobs value), and the ArtifactEngine
 * integration (compile -> scheme -> att/decoder edges, cache hits as
 * zero-duration records, sched.* metrics counters).
 *
 * sched compiles unconditionally (no tracing dependency), so this
 * whole suite runs in -DTEPIC_ENABLE_TRACING=OFF builds too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/artifact_engine.hh"
#include "json_mini.hh"
#include "support/metrics.hh"
#include "support/sched.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;
namespace sched = support::sched;

constexpr std::uint64_t kNoTask = ~std::uint64_t(0);

sched::TaskDecl
decl(std::string label, std::vector<std::uint64_t> deps = {},
     bool cache_hit = false)
{
    sched::TaskDecl d;
    d.label = label;
    d.kind = "test";
    d.workload = "unit";
    d.deps = std::move(deps);
    d.cacheHit = cache_hit;
    return d;
}

/** Run task @p id for roughly @p ms milliseconds of wall time. */
void
runFor(std::uint64_t id, unsigned ms)
{
    sched::TaskScope scope(id);
    if (ms)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/**
 * The report's exact-gated region: everything between the "structure"
 * key and the "timing" key. Byte-compared across --jobs values.
 */
std::string
structureSlice(const std::string &json)
{
    const auto begin = json.find("\"structure\"");
    const auto end = json.find("\"timing\"");
    EXPECT_NE(begin, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return json.substr(begin, end - begin);
}

/** Assert the WorkerSummary tiling invariant against @p analysis. */
void
expectWorkersTile(const sched::Analysis &analysis)
{
    for (const auto &w : analysis.workers) {
        EXPECT_EQ(w.rampNs + w.busyNs + w.queueEmptyNs + w.depStallNs,
                  w.endNs - analysis.windowStartNs)
            << "worker " << w.name << " timeline does not tile";
        EXPECT_GE(w.startNs, analysis.windowStartNs);
        EXPECT_LE(w.endNs, analysis.windowEndNs);
    }
}

TEST(SchedDisabled, EntryPointsAreInertWithoutASession)
{
    sched::resetForTest();
    EXPECT_FALSE(sched::enabled());
    EXPECT_EQ(sched::declareTask(decl("t")), kNoTask);
    // TaskScope on the sentinel id must be a no-op, not a crash.
    {
        sched::TaskScope scope(kNoTask);
    }
    sched::taskStarted(0);
    sched::taskFinished(0);
    const auto analysis = sched::analyze();
    EXPECT_TRUE(analysis.tasks.empty());
    EXPECT_TRUE(analysis.workers.empty());
    EXPECT_TRUE(analysis.acyclic);
}

TEST(SchedDisabled, ExportIsKeyStableWhenNeverStarted)
{
    // A binary that never records must not grow sched.* keys — the
    // same key-stability rule the prof exporter follows.
    sched::resetForTest();
    support::MetricsRegistry metrics;
    sched::exportMetricsTo(metrics);
    EXPECT_FALSE(metrics.hasCounterWithPrefix("sched."));
}

TEST(Sched, IdsFollowDeclarationOrderAndSentinelDepsAreDropped)
{
    sched::resetForTest();
    sched::startSession(1);
    const std::uint64_t a = sched::declareTask(decl("a"));
    const std::uint64_t b = sched::declareTask(decl("b", {a, kNoTask}));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);

    const auto analysis = sched::analyze();
    ASSERT_EQ(analysis.tasks.size(), 2u);
    // The sentinel (an id issued while recording was off) must not
    // survive as an edge.
    EXPECT_EQ(analysis.tasks[b].decl.deps,
              std::vector<std::uint64_t>{a});
    EXPECT_EQ(analysis.edgeCount, 1u);
    EXPECT_TRUE(analysis.acyclic);
    sched::endSession();
}

TEST(Sched, CriticalPathFollowsTheLongestChain)
{
    // Diamond: 0 -> {1, 2} -> 3, with 1 much longer than 2. The
    // critical path must route through 1.
    sched::resetForTest();
    sched::startSession(1);
    const std::uint64_t t0 = sched::declareTask(decl("t0"));
    const std::uint64_t t1 = sched::declareTask(decl("t1", {t0}));
    const std::uint64_t t2 = sched::declareTask(decl("t2", {t0}));
    const std::uint64_t t3 = sched::declareTask(decl("t3", {t1, t2}));
    runFor(t0, 1);
    runFor(t1, 20);
    runFor(t2, 0);
    runFor(t3, 1);

    const auto analysis = sched::analyze();
    EXPECT_TRUE(analysis.acyclic);
    EXPECT_EQ(analysis.edgeCount, 4u);
    EXPECT_EQ(analysis.criticalPath,
              (std::vector<std::uint64_t>{t0, t1, t3}));
    // Serial execution respects the edges, so the chain bound holds:
    // critical path <= makespan, hence achieved <= achievable.
    EXPECT_GT(analysis.criticalPathNs, 0u);
    EXPECT_LE(analysis.criticalPathNs, analysis.makespanNs);
    EXPECT_LE(analysis.totalWorkNs, analysis.makespanNs);
    EXPECT_LE(analysis.achievedSpeedup,
              analysis.achievableSpeedup + 1e-9);
    // Everything ran on the calling thread -> exactly one "main"
    // worker whose timeline tiles the window.
    ASSERT_EQ(analysis.workers.size(), 1u);
    EXPECT_EQ(analysis.workers[0].name, "main");
    EXPECT_EQ(analysis.workers[0].tasksRun, 4u);
    expectWorkersTile(analysis);
    sched::endSession();
}

TEST(Sched, CacheHitTasksAreZeroDurationAndNeverRun)
{
    sched::resetForTest();
    sched::startSession(1);
    const std::uint64_t miss = sched::declareTask(decl("m"));
    runFor(miss, 1);
    sched::declareTask(decl("h", {}, /*cache_hit=*/true));

    const auto analysis = sched::analyze();
    ASSERT_EQ(analysis.tasks.size(), 2u);
    EXPECT_EQ(analysis.cacheHits, 1u);
    const auto &hit = analysis.tasks[1];
    EXPECT_TRUE(hit.decl.cacheHit);
    EXPECT_FALSE(hit.ran);
    EXPECT_EQ(hit.durationNs(), 0u);
    EXPECT_EQ(hit.worker, sched::kNoWorker);

    // In the report the unran task has worker null and cache_hit true.
    const auto doc = testjson::parse(sched::reportJson("unit"));
    EXPECT_EQ(doc.at("structure").at("cache_hits").number, 1.0);
    const auto &stask = doc.at("structure").at("tasks").array.at(1);
    EXPECT_TRUE(stask.at("cache_hit").boolean);
    const auto &ttask = doc.at("timing").at("tasks").array.at(1);
    EXPECT_TRUE(ttask.at("worker").isNull());
    EXPECT_FALSE(ttask.at("ran").boolean);
    sched::endSession();
}

TEST(Sched, EngineBuildProducesAValidAcyclicDag)
{
    sched::resetForTest();
    sched::startSession(4);
    core::ArtifactEngine engine(4);
    engine.buildMany({
        core::BuildRequest{workloads::workloadByName("fir").source,
                           core::ArtifactRequest::all(), {}, "fir"},
        core::BuildRequest{workloads::workloadByName("matmul").source,
                           core::ArtifactRequest::all(), {},
                           "matmul"},
    });
    sched::endSession();

    const auto analysis = sched::analyze();
    EXPECT_TRUE(analysis.acyclic);
    EXPECT_EQ(analysis.cacheHits, 0u);
    ASSERT_FALSE(analysis.tasks.empty());

    std::uint64_t compiles = 0;
    std::uint64_t decoders = 0;
    for (const auto &t : analysis.tasks) {
        EXPECT_TRUE(t.ran) << t.decl.label;
        EXPECT_LE(t.enqueueNs, t.startNs) << t.decl.label;
        EXPECT_LE(t.startNs, t.finishNs) << t.decl.label;
        // Edges point at earlier declarations, and every non-compile
        // task hangs off its workload's compile stage.
        for (std::uint64_t dep : t.decl.deps)
            EXPECT_LT(dep, t.id);
        if (t.decl.kind == "compile") {
            ++compiles;
            EXPECT_TRUE(t.decl.deps.empty());
        } else {
            EXPECT_FALSE(t.decl.deps.empty()) << t.decl.label;
        }
        if (t.decl.kind == "decoder") {
            ++decoders;
            // base + full + tailored images feed the pre-warm.
            EXPECT_EQ(t.decl.deps.size(), 3u);
        }
    }
    EXPECT_EQ(compiles, 2u);
    EXPECT_EQ(decoders, 2u);

    // The critical path is a real dependency chain rooted at a
    // compile task.
    ASSERT_FALSE(analysis.criticalPath.empty());
    EXPECT_EQ(analysis.tasks[analysis.criticalPath.front()].decl.kind,
              "compile");
    for (std::size_t i = 1; i < analysis.criticalPath.size(); ++i) {
        const auto &deps =
            analysis.tasks[analysis.criticalPath[i]].decl.deps;
        EXPECT_NE(std::find(deps.begin(), deps.end(),
                            analysis.criticalPath[i - 1]),
                  deps.end());
    }
}

TEST(Sched, WorkerTimelinesTileAndBusyIntervalsDoNotOverlap)
{
    sched::resetForTest();
    sched::startSession(4);
    core::ArtifactEngine engine(4);
    engine.buildMany({
        core::BuildRequest{workloads::workloadByName("fir").source,
                           core::ArtifactRequest::all(), {}, "fir"},
        core::BuildRequest{workloads::workloadByName("matmul").source,
                           core::ArtifactRequest::all(), {},
                           "matmul"},
    });
    sched::endSession();

    const auto analysis = sched::analyze();
    ASSERT_FALSE(analysis.workers.empty());
    expectWorkersTile(analysis);

    for (const auto &w : analysis.workers) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> busy;
        for (const auto &t : analysis.tasks)
            if (t.ran && t.worker == w.worker)
                busy.emplace_back(t.startNs, t.finishNs);
        std::sort(busy.begin(), busy.end());
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < busy.size(); ++i) {
            total += busy[i].second - busy[i].first;
            if (i) {
                EXPECT_GE(busy[i].first, busy[i - 1].second)
                    << w.name << " runs two tasks at once";
            }
        }
        EXPECT_EQ(total, w.busyNs) << w.name;
        EXPECT_EQ(busy.size(), w.tasksRun) << w.name;
    }
}

TEST(Sched, SecondBuildOfTheSameKeyIsACacheHitTask)
{
    sched::resetForTest();
    sched::startSession(2);
    core::ArtifactEngine engine(2);
    const auto &source = workloads::workloadByName("fir").source;
    engine.build(source, core::ArtifactRequest::all(), {}, "fir");
    engine.build(source, core::ArtifactRequest::all(), {}, "fir");
    sched::endSession();

    const auto analysis = sched::analyze();
    EXPECT_EQ(analysis.cacheHits, 1u);
    const auto &hit = analysis.tasks.back();
    EXPECT_EQ(hit.decl.kind, "hit");
    EXPECT_EQ(hit.decl.workload, "fir");
    EXPECT_FALSE(hit.ran);
}

TEST(Sched, StructureSectionIsByteIdenticalAcrossJobs)
{
    // The acceptance contract: everything under "structure" (ids,
    // labels, kinds, edges, cache-hit flags) is exact-gated across
    // --jobs; only "timing" may move.
    const auto run = [](unsigned jobs) {
        sched::resetForTest();
        sched::startSession(jobs);
        core::ArtifactEngine engine(jobs);
        engine.buildMany({
            core::BuildRequest{
                workloads::workloadByName("fir").source,
                core::ArtifactRequest::all(), {}, "fir"},
            core::BuildRequest{
                workloads::workloadByName("matmul").source,
                core::ArtifactRequest::all(), {}, "matmul"},
        });
        sched::endSession();
        return sched::reportJson("unit");
    };
    const std::string serial = run(1);
    const std::string parallel = run(8);
    EXPECT_EQ(structureSlice(serial), structureSlice(parallel));
    // The sections differ overall (worker timelines, timestamps) —
    // the equality above must not be vacuous.
    EXPECT_NE(serial, parallel);
}

TEST(Sched, ReportJsonParsesAndSectionsAgree)
{
    sched::resetForTest();
    sched::startSession(2);
    core::ArtifactEngine engine(2);
    engine.build(workloads::workloadByName("fir").source,
                 core::ArtifactRequest::all(), {}, "fir");
    sched::endSession();

    const auto doc = testjson::parse(sched::reportJson("unit_fir"));
    EXPECT_EQ(doc.at("schema").str, "tepic-sched-v1");
    EXPECT_EQ(doc.at("name").str, "unit_fir");
    EXPECT_EQ(doc.at("jobs").number, 2.0);

    const auto &structure = doc.at("structure");
    EXPECT_TRUE(structure.at("acyclic").boolean);
    const std::size_t count =
        std::size_t(structure.at("task_count").number);
    EXPECT_EQ(structure.at("tasks").array.size(), count);
    EXPECT_EQ(doc.at("timing").at("tasks").array.size(), count);

    const auto &timing = doc.at("timing");
    EXPECT_GT(timing.at("makespan_ns").number, 0.0);
    EXPECT_GE(timing.at("speedup").at("achievable").number,
              timing.at("speedup").at("achieved").number - 1e-9);
    EXPECT_FALSE(timing.at("parallelism").at("concurrency")
                     .array.empty());
    EXPECT_FALSE(timing.at("workers").array.empty());
    for (const auto &w : timing.at("workers").array) {
        const auto &idle = w.at("idle");
        const double tiled = idle.at("ramp_ns").number +
                             idle.at("queue_empty_ns").number +
                             idle.at("dep_stall_ns").number +
                             w.at("busy_ns").number;
        const double window =
            w.at("end_ns").number -
            timing.at("window").at("start_ns").number;
        EXPECT_DOUBLE_EQ(tiled, window) << w.at("id").str;
    }
}

TEST(Sched, ExportMetricsMatchesTheAnalysis)
{
    sched::resetForTest();
    sched::startSession(2);
    core::ArtifactEngine engine(2);
    const auto &source = workloads::workloadByName("fir").source;
    engine.build(source, core::ArtifactRequest::all(), {}, "fir");
    engine.build(source, core::ArtifactRequest::all(), {}, "fir");
    sched::endSession();

    const auto analysis = sched::analyze();
    support::MetricsRegistry metrics;
    sched::exportMetricsTo(metrics);
    EXPECT_EQ(metrics.counter("sched.tasks"), analysis.tasks.size());
    EXPECT_EQ(metrics.counter("sched.edges"), analysis.edgeCount);
    EXPECT_EQ(metrics.counter("sched.cache_hits"),
              analysis.cacheHits);
    EXPECT_EQ(metrics.counter("sched.tasks.compile"), 1u);
    EXPECT_EQ(metrics.counter("sched.tasks.hit"), 1u);
    EXPECT_EQ(metrics.counter("sched.tasks.decoder"), 1u);

    // Per-kind counts sum to the task total.
    std::uint64_t by_kind = 0;
    for (const auto &name : metrics.counterNames())
        if (name.size() > 12 &&
            name.compare(0, 12, "sched.tasks.") == 0)
            by_kind += metrics.counter(name);
    EXPECT_EQ(by_kind, metrics.counter("sched.tasks"));
}

} // namespace
