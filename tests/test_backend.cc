/**
 * @file
 * Direct back-end tests: LIR structure after lowering, register
 * allocation invariants (reserved registers, physical ranges, call
 * clobber discipline), layout invariants (call adjacency, stubs,
 * block ids), and emulator edge cases on hand-built programs.
 */

#include <gtest/gtest.h>

#include <set>

#include "asmgen/layout.hh"
#include "compiler/driver.hh"
#include "compiler/emit.hh"
#include "compiler/irgen.hh"
#include "compiler/lower.hh"
#include "compiler/opt.hh"
#include "compiler/parser.hh"
#include "compiler/regalloc.hh"
#include "sim/emulator.hh"

namespace {

using namespace tepic;
using compiler::LirProgram;
using compiler::LirTerm;
using compiler::RegConv;

LirProgram
lowerSource(const std::string &source)
{
    auto module = compiler::generateIr(compiler::parse(source));
    compiler::optimise(module);
    return compiler::lower(module);
}

TEST(Lowering, CallsSplitBlocks)
{
    auto lir = lowerSource(R"(
        func f(): int { return 1; }
        func main(): int { var a = f(); var b = f(); return a + b; }
    )");
    const auto &main_fn = lir.functions[lir.mainIndex];
    unsigned calls = 0;
    for (const auto &blk : main_fn.blocks) {
        if (blk.term.kind == LirTerm::kCall) {
            ++calls;
            // Continuation must be a distinct block of this function.
            EXPECT_LT(blk.term.thenTarget, main_fn.blocks.size());
        }
    }
    EXPECT_EQ(calls, 2u);
}

TEST(Lowering, LeafDetection)
{
    auto lir = lowerSource(R"(
        func leaf(x): int { return x + 1; }
        func main(): int { return leaf(41); }
    )");
    for (const auto &fn : lir.functions) {
        if (fn.name == "leaf")
            EXPECT_TRUE(fn.isLeaf);
        if (fn.name == "main")
            EXPECT_FALSE(fn.isLeaf);
    }
}

TEST(Lowering, GlobalsGetDistinctAddresses)
{
    auto lir = lowerSource(R"(
        var a[4];
        var b;
        var c[2];
        func main(): int { a[0] = 1; b = 2; c[0] = 3; return b; }
    )");
    std::set<std::uint32_t> addrs(lir.data.globalAddress.begin(),
                                  lir.data.globalAddress.end());
    EXPECT_EQ(addrs.size(), 3u);
    for (auto addr : addrs)
        EXPECT_GE(addr, compiler::kDataBase);
}

TEST(Lowering, FloatConstantsArePooled)
{
    auto lir = lowerSource(R"(
        func main(): int {
            var x: float = 2.5;
            var y: float = 2.5;
            var z: float = 1.25;
            return int(x + y + z);
        }
    )");
    // Pool: two distinct doubles = 16 bytes behind the globals.
    EXPECT_EQ(lir.data.bytes.size(), 16u);
}

TEST(RegAlloc, OnlyArchitecturalRegistersSurvive)
{
    auto lir = lowerSource(R"(
        func mix(a, b, c, d): int { return a * b + c * d; }
        func main(): int {
            var acc = 0;
            for (var i = 0; i < 10; i = i + 1) {
                acc = acc + mix(i, acc, i + 1, acc - i);
            }
            return acc;
        }
    )");
    compiler::allocateRegisters(lir);
    for (const auto &fn : lir.functions) {
        EXPECT_TRUE(fn.allocated);
        for (const auto &blk : fn.blocks) {
            for (const auto &op : blk.body) {
                if (op.dest != ir::kNoVreg &&
                    op.destCls != ir::RegClass::kNone) {
                    EXPECT_LT(op.dest, 32u);
                    // Never the reserved temps' *illegal* targets:
                    // r0 (zero), r30 (SP), r31 (link) are not
                    // allocatable destinations for body computation —
                    // except through pseudo expansions which use r1.
                    if (op.pseudo == compiler::LirPseudo::kNone &&
                        op.destCls == ir::RegClass::kInt) {
                        EXPECT_NE(op.dest, RegConv::kZero);
                        EXPECT_NE(op.dest, unsigned(isa::kRegSp));
                        EXPECT_NE(op.dest, unsigned(isa::kRegLink));
                    }
                }
            }
        }
    }
}

TEST(RegAlloc, CallCrossingValuesAvoidCallerSaved)
{
    // `keep` stays live across the call: it must not sit in r3..r15
    // (caller-saved) at the call boundary. We verify behaviourally:
    // the callee clobbers every caller-saved register in the
    // emulator... which it does by construction; so compile+run and
    // check the result (the real guarantee), plus spill accounting.
    const char *src = R"(
        func noisy(x): int { return x * 7 + 3; }
        func main(): int {
            var keep = 12345;
            var r = noisy(7);
            return keep + r;
        }
    )";
    auto compiled = compiler::compileSource(src);
    auto result = sim::emulate(compiled.program, compiled.data);
    EXPECT_EQ(result.exitValue, 12345 + 7 * 7 + 3);
}

TEST(RegAlloc, SpillStatisticsReported)
{
    // Force far more simultaneously-live values than registers; the
    // initialisers read a global so the optimiser cannot fold the
    // whole program away.
    std::string src = "var seed = 3;\nfunc main(): int {\n";
    for (int i = 0; i < 40; ++i)
        src += "    var v" + std::to_string(i) + " = seed * " +
               std::to_string(i + 1) + ";\n";
    src += "    var s = 0;\n";
    for (int i = 0; i < 40; ++i)
        src += "    s = s + v" + std::to_string(i) + " * v" +
               std::to_string((i + 7) % 40) + ";\n";
    src += "    return s;\n}\n";
    auto lir = lowerSource(src);
    const auto stats = compiler::allocateRegisters(lir);
    EXPECT_GT(stats.spills, 0u);
    EXPECT_GT(stats.intervals, 40u);
}

TEST(Layout, CallContinuationIsAdjacent)
{
    auto lir = lowerSource(R"(
        func f(x): int { if (x > 0) { return x; } return 0 - x; }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 4; i = i + 1) { s = s + f(s - 2); }
            return s;
        }
    )");
    compiler::allocateRegisters(lir);
    auto emitted = compiler::emit(lir);
    auto laid = asmgen::layoutProgram(emitted);
    for (std::size_t b = 0; b < laid.blocks.size(); ++b) {
        const auto &blk = laid.blocks[b];
        if (blk.ops.empty() || !blk.ops.back().isBranch())
            continue;
        if (blk.ops.back().opcode() == isa::Opcode::kCall)
            EXPECT_EQ(blk.fallthrough, isa::BlockId(b + 1));
    }
    EXPECT_EQ(laid.entry, 0u);
    EXPECT_EQ(laid.blockSource.size(), laid.blocks.size());
}

TEST(Layout, EveryBlockEndsResolvably)
{
    auto lir = lowerSource(R"(
        func main(): int {
            var x = 3;
            if (x > 1) { x = x * 2; } else { x = x + 10; }
            while (x < 100) { x = x * 3; }
            return x;
        }
    )");
    compiler::allocateRegisters(lir);
    auto laid = asmgen::layoutProgram(compiler::emit(lir));
    for (std::size_t b = 0; b < laid.blocks.size(); ++b) {
        const auto &blk = laid.blocks[b];
        ASSERT_FALSE(blk.ops.empty());
        const bool has_branch = blk.ops.back().isBranch();
        if (!has_branch) {
            // Pure fallthrough must point at the next block.
            EXPECT_EQ(blk.fallthrough, isa::BlockId(b + 1));
        }
        // Branch targets are in range.
        if (blk.branchTarget != isa::kNoBlock)
            EXPECT_LT(blk.branchTarget, laid.blocks.size());
    }
}

// ---- emulator edge cases on hand-built programs ----

namespace {

isa::Operation
makeOp(isa::OpType type, isa::Opcode opcode)
{
    return isa::Operation::make(type, opcode);
}

/** Single-block program executing @p ops then returning via link. */
isa::VliwProgram
singleBlock(std::vector<isa::Operation> ops)
{
    isa::VliwProgram prog;
    auto &blk = prog.addBlock();
    for (auto &op : ops) {
        isa::Mop mop;
        mop.append(op);
        blk.mops.push_back(mop);
    }
    isa::Mop ret_mop;
    isa::Operation ret = makeOp(isa::OpType::kBranch,
                                isa::Opcode::kRet);
    ret.setSrc1(isa::kRegLink);
    ret_mop.append(ret);
    blk.mops.push_back(ret_mop);
    return prog;
}

std::int32_t
runSingle(std::vector<isa::Operation> ops)
{
    auto prog = singleBlock(std::move(ops));
    compiler::DataSegment data;
    data.base = 0x1000;
    return sim::emulate(prog, data).exitValue;
}

} // namespace

TEST(Emulator, PredicatedOpsMerge)
{
    // p1 = (0 != 0) = false; r3 = 7; r3 = 9 if p1 -> stays 7.
    isa::Operation cmp = makeOp(isa::OpType::kInt,
                                isa::Opcode::kCmppNe);
    cmp.setDest(1);
    cmp.setSrc1(0);
    cmp.setSrc2(0);
    isa::Operation set7 = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    set7.setDest(3);
    set7.setImm(7);
    isa::Operation set9 = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    set9.setDest(3);
    set9.setImm(9);
    set9.setPred(1);
    EXPECT_EQ(runSingle({cmp, set7, set9}), 7);
}

TEST(Emulator, VliwReadsHappenBeforeWrites)
{
    // One MOP: r3 <- r4, r4 <- r3 (a swap): both read pre-MOP values.
    isa::VliwProgram prog;
    auto &blk = prog.addBlock();
    isa::Mop init;
    isa::Operation a = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    a.setDest(3);
    a.setImm(5);
    init.append(a);
    isa::Operation b = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    b.setDest(4);
    b.setImm(11);
    init.append(b);
    blk.mops.push_back(init);

    isa::Mop swap;
    isa::Operation m1 = makeOp(isa::OpType::kInt, isa::Opcode::kMov);
    m1.setDest(3);
    m1.setSrc1(4);
    swap.append(m1);
    isa::Operation m2 = makeOp(isa::OpType::kInt, isa::Opcode::kMov);
    m2.setDest(4);
    m2.setSrc1(3);
    swap.append(m2);
    blk.mops.push_back(swap);

    // r3 = r3*32 + r4 = 11*32 + 5.
    isa::Mop pack;
    isa::Operation sh = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    sh.setDest(5);
    sh.setImm(5);
    pack.append(sh);
    blk.mops.push_back(pack);
    isa::Mop pack2;
    isa::Operation shl = makeOp(isa::OpType::kInt, isa::Opcode::kShl);
    shl.setDest(3);
    shl.setSrc1(3);
    shl.setSrc2(5);
    pack2.append(shl);
    blk.mops.push_back(pack2);
    isa::Mop pack3;
    isa::Operation add = makeOp(isa::OpType::kInt, isa::Opcode::kAdd);
    add.setDest(3);
    add.setSrc1(3);
    add.setSrc2(4);
    pack3.append(add);
    blk.mops.push_back(pack3);

    isa::Mop ret_mop;
    isa::Operation ret = makeOp(isa::OpType::kBranch,
                                isa::Opcode::kRet);
    ret.setSrc1(isa::kRegLink);
    ret_mop.append(ret);
    blk.mops.push_back(ret_mop);

    compiler::DataSegment data;
    data.base = 0x1000;
    EXPECT_EQ(sim::emulate(prog, data).exitValue, 11 * 32 + 5);
}

TEST(Emulator, WritesToR0AndP0Ignored)
{
    isa::Operation clobber = makeOp(isa::OpType::kInt,
                                    isa::Opcode::kLdi);
    clobber.setDest(0);
    clobber.setImm(99);
    isa::Operation use = makeOp(isa::OpType::kInt, isa::Opcode::kAdd);
    use.setDest(3);
    use.setSrc1(0);
    use.setSrc2(0);
    EXPECT_EQ(runSingle({clobber, use}), 0);
}

TEST(Emulator, BrlcLoopCounter)
{
    // r4 = 3; loop: r3 += 1; brlc r4 -> loop. Runs 3 times.
    isa::VliwProgram prog;
    auto &b0 = prog.addBlock();
    isa::Mop init;
    isa::Operation cnt = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    cnt.setDest(4);
    cnt.setImm(3);
    init.append(cnt);
    b0.mops.push_back(init);
    b0.fallthrough = 1;

    auto &b1 = prog.addBlock();
    isa::Mop body;
    isa::Operation one = makeOp(isa::OpType::kInt, isa::Opcode::kLdi);
    one.setDest(5);
    one.setImm(1);
    body.append(one);
    b1.mops.push_back(body);
    isa::Mop bump;
    isa::Operation add = makeOp(isa::OpType::kInt, isa::Opcode::kAdd);
    add.setDest(3);
    add.setSrc1(3);
    add.setSrc2(5);
    bump.append(add);
    b1.mops.push_back(bump);
    isa::Mop loop;
    isa::Operation brlc = makeOp(isa::OpType::kBranch,
                                 isa::Opcode::kBrlc);
    brlc.setField(isa::FieldKind::kCounter, 4);
    brlc.setTarget(1);
    loop.append(brlc);
    b1.mops.push_back(loop);
    b1.fallthrough = 2;
    b1.branchTarget = 1;

    auto &b2 = prog.addBlock();
    isa::Mop fin;
    isa::Operation ret = makeOp(isa::OpType::kBranch,
                                isa::Opcode::kRet);
    ret.setSrc1(isa::kRegLink);
    fin.append(ret);
    b2.mops.push_back(fin);

    compiler::DataSegment data;
    data.base = 0x1000;
    EXPECT_EQ(sim::emulate(prog, data).exitValue, 3);
}

TEST(Emulator, FaultsAreFatal)
{
    // Division by zero.
    {
        isa::Operation div = makeOp(isa::OpType::kInt,
                                    isa::Opcode::kDiv);
        div.setDest(3);
        div.setSrc1(0);
        div.setSrc2(0);
        EXPECT_ANY_THROW(runSingle({div}));
    }
    // Misaligned load (address 2).
    {
        isa::Operation addr = makeOp(isa::OpType::kInt,
                                     isa::Opcode::kLdi);
        addr.setDest(4);
        addr.setImm(2);
        isa::Operation load = makeOp(isa::OpType::kMemory,
                                     isa::Opcode::kLoad);
        load.setDest(3);
        load.setSrc1(4);
        EXPECT_ANY_THROW(runSingle({addr, load}));
    }
}

TEST(Emulator, RunawayGuardTrips)
{
    // An infinite self-loop must hit the MOP budget, not hang.
    isa::VliwProgram prog;
    auto &blk = prog.addBlock();
    isa::Mop loop;
    isa::Operation br = makeOp(isa::OpType::kBranch, isa::Opcode::kBr);
    br.setTarget(0);
    loop.append(br);
    blk.mops.push_back(loop);
    blk.branchTarget = 0;
    compiler::DataSegment data;
    data.base = 0x1000;
    sim::EmulatorConfig config;
    config.maxMops = 1000;
    config.recordTrace = false;
    EXPECT_ANY_THROW(sim::emulate(prog, data, config));
}

} // namespace
