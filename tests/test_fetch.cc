/**
 * @file
 * Fetch-subsystem tests: the Table-1 cycle model (checked cell by
 * cell against the paper), the banked cache's restricted-placement
 * behaviour, the L0 buffer, the ATB with its coupled predictor, and
 * end-to-end fetch-simulation invariants.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "fetch/att.hh"
#include "fetch/banked_cache.hh"
#include "fetch/cycle_model.hh"
#include "fetch/fetch_sim.hh"
#include "fetch/l0_buffer.hh"
#include "isa/baseline.hh"
#include "schemes/huffman_scheme.hh"
#include "sim/emulator.hh"

namespace {

using namespace tepic;
using fetch::blockCycles;
using fetch::CyclePenalties;
using fetch::FetchEvent;
using fetch::SchemeClass;
using fetch::schemeClassName;

/**
 * Table 1 of the paper, verified literally: a single-MOP, single-op,
 * n-line block must cost exactly the table's cell.
 */
TEST(CycleModel, Table1BaseColumn)
{
    const std::uint32_t n = 4;  // memory lines
    auto cost = [&](bool pred_ok, bool hit) {
        FetchEvent ev;
        ev.predictionCorrect = pred_ok;
        ev.l1Hit = hit;
        return blockCycles(SchemeClass::kBase, ev, 1, 1, n);
    };
    EXPECT_EQ(cost(true, true), 1u);            // 1 cycle
    EXPECT_EQ(cost(true, false), 1u + (n - 1)); // 1+(n-1)
    EXPECT_EQ(cost(false, true), 2u);           // 2 cycles
    EXPECT_EQ(cost(false, false), 8u + (n - 1)); // 8+(n-1)
}

TEST(CycleModel, Table1TailoredColumn)
{
    const std::uint32_t n = 4;
    auto cost = [&](bool pred_ok, bool hit) {
        FetchEvent ev;
        ev.predictionCorrect = pred_ok;
        ev.l1Hit = hit;
        return blockCycles(SchemeClass::kTailored, ev, 1, 1, n);
    };
    EXPECT_EQ(cost(true, true), 1u);
    EXPECT_EQ(cost(true, false), 2u + (n - 1)); // 2+(n-1)
    EXPECT_EQ(cost(false, true), 2u);
    EXPECT_EQ(cost(false, false), 9u + (n - 1)); // 9+(n-1)
}

TEST(CycleModel, Table1CompressedColumn)
{
    const std::uint32_t n = 4;
    auto cost = [&](bool pred_ok, bool hit, bool l0) {
        FetchEvent ev;
        ev.predictionCorrect = pred_ok;
        ev.l1Hit = hit;
        ev.l0Hit = l0;
        return blockCycles(SchemeClass::kCompressed, ev, 1, 1, n);
    };
    // Buffer-hit rows: flat 1 cycle in every column.
    EXPECT_EQ(cost(true, true, true), 1u);
    EXPECT_EQ(cost(true, false, true), 1u);
    EXPECT_EQ(cost(false, true, true), 1u);
    EXPECT_EQ(cost(false, false, true), 1u);
    // Buffer-miss rows.
    EXPECT_EQ(cost(true, true, false), 1u);             // 1+(n-1)@hit
    EXPECT_EQ(cost(true, false, false), 3u + (n - 1));  // 3+(n-1)
    EXPECT_EQ(cost(false, true, false), 3u);            // decode stage
    EXPECT_EQ(cost(false, false, false), 10u + (n - 1)); // 10+(n-1)
}

TEST(CycleModel, StreamsOneMopPerCycle)
{
    FetchEvent ok;
    EXPECT_EQ(blockCycles(SchemeClass::kBase, ok, 12, 30, 3), 12u);
    EXPECT_EQ(blockCycles(SchemeClass::kTailored, ok, 12, 30, 3), 12u);
    FetchEvent l0;
    l0.l0Hit = true;
    EXPECT_EQ(blockCycles(SchemeClass::kCompressed, l0, 12, 30, 3),
              12u);
}

TEST(CycleModel, RejectsBadShapes)
{
    FetchEvent ev;
    EXPECT_ANY_THROW(blockCycles(SchemeClass::kBase, ev, 0, 0, 1));
    EXPECT_ANY_THROW(blockCycles(SchemeClass::kBase, ev, 2, 1, 1));
}

/**
 * The per-cause breakdown must tile blockCycles() exactly for every
 * scheme × event combination: stall attribution is a decomposition of
 * the Table-1 model, never a second model.
 */
TEST(StallAttribution, BreakdownTilesBlockCycles)
{
    for (auto scheme : {SchemeClass::kBase, SchemeClass::kTailored,
                        SchemeClass::kCompressed}) {
        for (bool pred_ok : {true, false}) {
            for (bool l1_hit : {true, false}) {
                for (bool l0_hit : {false, true}) {
                    for (std::uint32_t n : {1u, 2u, 5u}) {
                        FetchEvent ev;
                        ev.predictionCorrect = pred_ok;
                        ev.l1Hit = l1_hit;
                        ev.l0Hit = l0_hit;
                        const auto causes = fetch::stallBreakdown(
                            scheme, ev, 3, 7, n);
                        EXPECT_EQ(3u + causes.total(),
                                  blockCycles(scheme, ev, 3, 7, n))
                            << schemeClassName(scheme) << " pred="
                            << pred_ok << " l1=" << l1_hit
                            << " l0=" << l0_hit << " n=" << n;
                        EXPECT_EQ(causes.atbMiss, 0u)
                            << "the ATB is modelled outside "
                               "blockCycles";
                    }
                }
            }
        }
    }
}

TEST(StallAttribution, CausesLandWhereTable1SaysTheyDo)
{
    const std::uint32_t n = 4;
    FetchEvent miss;
    miss.l1Hit = false;
    // Base miss: pure refill repair.
    auto base = fetch::stallBreakdown(SchemeClass::kBase, miss, 1, 1,
                                      n);
    EXPECT_EQ(base.l1Refill, n - 1);
    EXPECT_EQ(base.mispredict, 0u);
    // Tailored miss: refill absorbs the extra MOP-extraction stage.
    auto tail = fetch::stallBreakdown(SchemeClass::kTailored, miss, 1,
                                      1, n);
    EXPECT_EQ(tail.l1Refill, 1u + (n - 1));
    // Compressed mispredicted hit: redirect + visible decoder stage.
    FetchEvent redirect;
    redirect.predictionCorrect = false;
    auto comp = fetch::stallBreakdown(SchemeClass::kCompressed,
                                      redirect, 1, 1, n);
    EXPECT_EQ(comp.mispredict, 1u);
    EXPECT_EQ(comp.decodeStage, 1u);
    EXPECT_EQ(comp.l1Refill, 0u);
    // Compressed L0 hit: every cause is zero, but the bypass saved
    // the redirect + decoder latency it would have paid.
    redirect.l0Hit = true;
    auto l0 = fetch::stallBreakdown(SchemeClass::kCompressed, redirect,
                                    1, 1, n);
    EXPECT_EQ(l0.total(), 0u);
    EXPECT_EQ(fetch::l0BypassSavings(SchemeClass::kCompressed,
                                     redirect),
              2u);
    // The savings counterfactual is zero when nothing was at risk.
    redirect.predictionCorrect = true;
    EXPECT_EQ(fetch::l0BypassSavings(SchemeClass::kCompressed,
                                     redirect),
              0u);
    FetchEvent base_ev;
    base_ev.l0Hit = true;
    EXPECT_EQ(fetch::l0BypassSavings(SchemeClass::kBase, base_ev), 0u);
}

TEST(BankedCache, HitAfterFill)
{
    fetch::BankedCache cache({16, 2, 32});
    auto first = cache.accessBlock(0, 40);
    EXPECT_FALSE(first.hit);
    EXPECT_EQ(first.blockLines, 2u);  // bytes 0..39 span 2 lines
    EXPECT_EQ(first.linesFilled, 2u);
    auto second = cache.accessBlock(0, 40);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(BankedCache, LineSpanComputation)
{
    fetch::BankedCache cache({16, 2, 32});
    // A block straddling a line boundary: bytes 30..41.
    EXPECT_EQ(cache.accessBlock(30, 12).blockLines, 2u);
    // Exactly one line.
    EXPECT_EQ(cache.accessBlock(64, 32).blockLines, 1u);
    // One byte.
    EXPECT_EQ(cache.accessBlock(200, 1).blockLines, 1u);
}

TEST(BankedCache, LruEvictionWithinSet)
{
    // 1 set, 2 ways, 32-byte lines: three conflicting lines.
    fetch::BankedCache cache({1, 2, 32});
    cache.accessBlock(0, 8);    // line 0
    cache.accessBlock(32, 8);   // line 1
    cache.accessBlock(0, 8);    // touch line 0 (now MRU)
    cache.accessBlock(64, 8);   // line 2 evicts line 1
    EXPECT_TRUE(cache.accessBlock(0, 8).hit);
    EXPECT_FALSE(cache.accessBlock(32, 8).hit);  // evicted
}

TEST(BankedCache, RestrictedPlacementPartialIsMiss)
{
    // A 2-line block whose second line gets evicted must re-fetch the
    // whole block (restricted placement, §3.4).
    fetch::BankedCache cache({1, 2, 32});
    cache.accessBlock(0, 64);    // lines 0,1 fill both ways of set 0
    EXPECT_TRUE(cache.accessBlock(0, 64).hit);
    cache.accessBlock(96, 8);    // line 3 evicts one of them
    auto again = cache.accessBlock(0, 64);
    EXPECT_FALSE(again.hit);
    EXPECT_EQ(again.linesFilled, 2u);  // whole block refilled
}

TEST(BankedCache, PaperGeometries)
{
    EXPECT_EQ(fetch::CacheConfig::paperCompressed().capacityBytes(),
              16u * 1024);
    EXPECT_EQ(fetch::CacheConfig::paperBase().capacityBytes(),
              20u * 1024);
}

TEST(L0Buffer, HitMissAndCapacity)
{
    fetch::L0Buffer buf(32);
    EXPECT_FALSE(buf.access(1, 10));
    EXPECT_TRUE(buf.access(1, 10));
    EXPECT_FALSE(buf.access(2, 10));
    EXPECT_FALSE(buf.access(3, 10));
    // 30 ops resident; block 4 (10 ops) evicts LRU block 1.
    EXPECT_FALSE(buf.access(4, 10));
    EXPECT_FALSE(buf.access(1, 10));  // was evicted
}

TEST(L0Buffer, CapacityOneDegeneratesToSingleEntry)
{
    // Exactly one 4-op block fits: every distinct access evicts the
    // sole resident, so only immediate re-accesses hit.
    fetch::L0Buffer buf(4);
    EXPECT_FALSE(buf.access(0, 4));
    EXPECT_TRUE(buf.access(0, 4));
    EXPECT_EQ(buf.residentOps(), 4u);
    EXPECT_FALSE(buf.access(1, 4));  // evicts 0
    EXPECT_FALSE(buf.access(0, 4));  // evicts 1
    EXPECT_EQ(buf.residentOps(), 4u);
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_EQ(buf.misses(), 3u);
}

TEST(L0Buffer, ReAccessMovesBlockToMruExactEvictionOrder)
{
    // Three 4-op blocks fill the buffer; a hit on the oldest must
    // move it to MRU so the *next* oldest is the eviction victim.
    fetch::L0Buffer buf(12);
    EXPECT_FALSE(buf.access(0, 4));
    EXPECT_FALSE(buf.access(1, 4));
    EXPECT_FALSE(buf.access(2, 4));
    EXPECT_TRUE(buf.access(0, 4));   // LRU order now 1, 2, 0
    EXPECT_FALSE(buf.access(3, 4));  // evicts 1, not 0
    EXPECT_TRUE(buf.access(0, 4));   // survived
    EXPECT_TRUE(buf.access(2, 4));   // survived
    EXPECT_FALSE(buf.access(1, 4));  // the actual victim; evicts 3
    EXPECT_FALSE(buf.access(3, 4));
    EXPECT_EQ(buf.hits(), 3u);
    EXPECT_EQ(buf.misses(), 6u);
    EXPECT_EQ(buf.residentOps(), 12u);
}

TEST(L0Buffer, OversizedBlocksBypass)
{
    fetch::L0Buffer buf(32);
    EXPECT_FALSE(buf.access(7, 100));
    EXPECT_FALSE(buf.access(7, 100));  // never cached
    EXPECT_EQ(buf.hits(), 0u);
    // Normal blocks still work.
    EXPECT_FALSE(buf.access(8, 32));
    EXPECT_TRUE(buf.access(8, 32));
}

namespace {

/** Compiled three-block program + image + ATT for ATB tests. */
struct AtbFixture
{
    compiler::CompiledProgram compiled;
    isa::Image image;
    fetch::Att att;

    AtbFixture()
        : compiled(compiler::compileSource(R"(
            func main(): int {
                var s = 0;
                for (var i = 0; i < 10; i = i + 1) { s = s + i; }
                return s;
            }
          )")),
          image(isa::buildBaselineImage(compiled.program)),
          att(fetch::Att::build(image, compiled.program))
    {
    }
};

} // namespace

TEST(Att, EntriesMirrorImageAndCfg)
{
    AtbFixture fx;
    ASSERT_EQ(fx.att.entries().size(),
              fx.compiled.program.blocks().size());
    for (const auto &blk : fx.compiled.program.blocks()) {
        const auto &entry = fx.att.entry(blk.id);
        EXPECT_EQ(entry.byteAddress,
                  fx.image.blocks[blk.id].bitOffset / 8);
        EXPECT_EQ(entry.numOps, fx.image.blocks[blk.id].numOps);
        EXPECT_EQ(entry.fallthrough, blk.fallthrough);
        EXPECT_EQ(entry.staticTarget, blk.branchTarget);
    }
    EXPECT_GT(fx.att.entryBits(), 16u);
    EXPECT_EQ(fx.att.totalBits(),
              fx.att.entryBits() * fx.att.entries().size());
}

TEST(Atb, LruAndPredictorLearning)
{
    AtbFixture fx;
    fetch::Atb atb(fx.att, 2);

    EXPECT_FALSE(atb.access(0));
    EXPECT_TRUE(atb.access(0));
    EXPECT_FALSE(atb.access(1));
    EXPECT_FALSE(atb.access(2));  // evicts block 0 (LRU)
    EXPECT_FALSE(atb.access(0));  // re-miss

    // Predictor: after repeated taken outcomes to block 9, a block
    // with a fallthrough flips to predicting the target.
    fetch::Atb atb2(fx.att, 8);
    // Find a block with a fallthrough successor.
    isa::BlockId with_fall = isa::kNoBlock;
    for (const auto &blk : fx.compiled.program.blocks()) {
        if (blk.fallthrough != isa::kNoBlock) {
            with_fall = blk.id;
            break;
        }
    }
    ASSERT_NE(with_fall, isa::kNoBlock);
    const isa::BlockId fall =
        fx.att.entry(with_fall).fallthrough;
    atb2.access(with_fall);
    // Cold counter (weakly not-taken): predicts fallthrough.
    EXPECT_EQ(atb2.predictNext(with_fall), fall);
    atb2.update(with_fall, true, 2);
    atb2.update(with_fall, true, 2);
    EXPECT_EQ(atb2.predictNext(with_fall), 2u);
    atb2.update(with_fall, false, fall);
    atb2.update(with_fall, false, fall);
    EXPECT_EQ(atb2.predictNext(with_fall), fall);
}

TEST(Atb, CapacityOneDegeneratesToSingleEntry)
{
    AtbFixture fx;
    ASSERT_GE(fx.att.entries().size(), 2u);
    fetch::Atb atb(fx.att, 1);
    EXPECT_FALSE(atb.access(0));
    EXPECT_TRUE(atb.access(0));
    EXPECT_FALSE(atb.access(1));  // evicts 0
    EXPECT_FALSE(atb.access(0));  // evicts 1
    EXPECT_EQ(atb.hits(), 1u);
    EXPECT_EQ(atb.misses(), 3u);
}

TEST(Atb, ReAccessMovesEntryToMruExactEvictionOrder)
{
    AtbFixture fx;
    ASSERT_GE(fx.att.entries().size(), 3u);
    fetch::Atb atb(fx.att, 2);
    EXPECT_FALSE(atb.access(0));
    EXPECT_FALSE(atb.access(1));
    EXPECT_TRUE(atb.access(0));   // LRU order now 1, 0
    EXPECT_FALSE(atb.access(2));  // evicts 1, not 0
    EXPECT_TRUE(atb.access(0));   // survived the eviction
    EXPECT_FALSE(atb.access(1));  // the actual victim; evicts 2
    EXPECT_FALSE(atb.access(2));
    EXPECT_EQ(atb.hits(), 2u);
    EXPECT_EQ(atb.misses(), 5u);
}

/**
 * The per-entry 2-bit counter must saturate at both ends (§3.4): from
 * strongly-taken it takes exactly two not-taken outcomes to flip the
 * prediction, however long the taken streak was — and symmetrically
 * from strongly-not-taken. A wrapping counter would flip after one.
 */
TEST(Atb, TwoBitCounterSaturatesAtBothEnds)
{
    AtbFixture fx;
    fetch::Atb atb(fx.att, 8);
    isa::BlockId site = isa::kNoBlock;
    for (const auto &blk : fx.compiled.program.blocks()) {
        if (blk.fallthrough != isa::kNoBlock) {
            site = blk.id;
            break;
        }
    }
    ASSERT_NE(site, isa::kNoBlock);
    const isa::BlockId fall = fx.att.entry(site).fallthrough;
    atb.access(site);

    for (int i = 0; i < 6; ++i)  // drive to strongly taken; saturate
        atb.update(site, true, 2);
    EXPECT_EQ(atb.predictNext(site), 2u);
    atb.update(site, false, fall);  // strongly -> weakly taken
    EXPECT_EQ(atb.predictNext(site), 2u);  // hysteresis holds
    atb.update(site, false, fall);  // weakly taken -> weakly n-t
    EXPECT_EQ(atb.predictNext(site), fall);

    for (int i = 0; i < 6; ++i)  // saturate at the bottom
        atb.update(site, false, fall);
    atb.update(site, true, 2);  // strongly -> weakly not-taken
    EXPECT_EQ(atb.predictNext(site), fall);  // hysteresis again
    atb.update(site, true, 2);
    EXPECT_EQ(atb.predictNext(site), 2u);
}

/**
 * Bimodal direction state is keyed by ATB entry, i.e. by static block
 * (§3.4) — two sites trained to opposite outcomes in lockstep must
 * never perturb each other's counters.
 */
TEST(Atb, SiteKeyingIsAliasFree)
{
    AtbFixture fx;
    std::vector<isa::BlockId> sites;
    for (const auto &blk : fx.compiled.program.blocks())
        if (blk.fallthrough != isa::kNoBlock)
            sites.push_back(blk.id);
    ASSERT_GE(sites.size(), 2u);
    const isa::BlockId a = sites[0], b = sites[1];
    fetch::Atb atb(fx.att, 8);  // both resident; nothing evicts
    atb.access(a);
    atb.access(b);
    for (int round = 0; round < 10; ++round) {
        atb.update(a, true, 2);
        atb.update(b, false, fx.att.entry(b).fallthrough);
    }
    EXPECT_EQ(atb.predictNext(a), 2u);
    EXPECT_EQ(atb.predictNext(b), fx.att.entry(b).fallthrough);
}

#if TEPIC_HOTSTATS_ENABLED
/**
 * The hot-stats site ledger against the architectural counters: the
 * per-site direction totals tile the fetch count (one prediction per
 * event) and the per-site mispredict deltas tile predictionsWrong
 * once the unconsumed final prediction is added back.
 */
TEST(FetchSim, SiteCounterDeltasTileMispredicts)
{
    auto compiled = compiler::compileSource(R"(
        func main(): int {
            var s = 0;
            for (var i = 0; i < 300; i = i + 1) {
                if (i % 7 < 3) { s = s + i; } else { s = s - 1; }
            }
            return s;
        }
    )");
    auto emu = sim::emulate(compiled.program, compiled.data);
    const auto image = isa::buildBaselineImage(compiled.program);
    auto config = fetch::FetchConfig::paper(SchemeClass::kBase);
    config.hotStats.enabled = true;
    const auto stats = fetch::simulateFetch(image, compiled.program,
                                            emu.trace, config);
    const fetch::HotStats &hs = stats.hotStats;
    ASSERT_TRUE(hs.recorded);
    std::uint64_t site_predictions = 0, site_mispredicts = 0;
    for (std::uint32_t blk = 0; blk < hs.staticBlocks; ++blk) {
        site_predictions += hs.siteTaken[blk] + hs.siteNotTaken[blk];
        site_mispredicts += hs.siteMispredicts[blk];
        // A site only accumulates direction outcomes if it ran.
        if (hs.siteTaken[blk] + hs.siteNotTaken[blk] > 0) {
            EXPECT_GT(hs.blockFetches[blk], 0u) << "block " << blk;
        }
    }
    EXPECT_EQ(site_predictions, stats.blocksFetched);
    EXPECT_EQ(site_mispredicts,
              stats.predictionsWrong + hs.unconsumedMispredicts);
    EXPECT_GT(site_mispredicts, 0u);  // the if() ping-pongs
}
#endif // TEPIC_HOTSTATS_ENABLED

TEST(FetchSim, InvariantsOnRealWorkload)
{
    auto compiled = compiler::compileSource(R"(
        func f(x): int {
            if (x % 3 == 0) { return x * 2; }
            return x + 1;
        }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 500; i = i + 1) { s = s + f(i); }
            return s;
        }
    )");
    auto emu = sim::emulate(compiled.program, compiled.data);
    const auto image = isa::buildBaselineImage(compiled.program);

    const auto stats = fetch::simulateFetch(
        image, compiled.program, emu.trace,
        fetch::FetchConfig::paper(SchemeClass::kBase));

    EXPECT_EQ(stats.blocksFetched, emu.trace.events.size());
    EXPECT_EQ(stats.opsDelivered, emu.dynamicOps);
    EXPECT_EQ(stats.idealCycles, emu.dynamicMops);
    EXPECT_GE(stats.cycles, stats.idealCycles);
    EXPECT_EQ(stats.predictionsCorrect + stats.predictionsWrong,
              stats.blocksFetched);
    EXPECT_EQ(stats.l1Hits + stats.l1Misses, stats.blocksFetched);
    EXPECT_LE(stats.ipc(), stats.idealIpc());
    EXPECT_GT(stats.l1HitRate(), 0.9);  // tiny program, warm cache
    // Misses moved real bytes.
    EXPECT_GT(stats.busBitFlips, 0u);
    EXPECT_GT(stats.bytesTransferred, 0u);
}

TEST(FetchSim, PerfectPredictionOnStraightLine)
{
    // A single-block program mispredicts at most the halt transition.
    auto compiled = compiler::compileSource(
        "func main(): int { return 1 + 2 + 3; }");
    auto emu = sim::emulate(compiled.program, compiled.data);
    const auto image = isa::buildBaselineImage(compiled.program);
    const auto stats = fetch::simulateFetch(
        image, compiled.program, emu.trace,
        fetch::FetchConfig::paper(SchemeClass::kBase));
    EXPECT_EQ(stats.predictionsWrong, 0u);
}

TEST(FetchSim, TinyLoopLivesInL0)
{
    // A loop body far below 32 ops: after warmup, essentially every
    // fetch is an L0 hit under the compressed scheme.
    auto compiled = compiler::compileSource(R"(
        func main(): int {
            var s = 0;
            for (var i = 0; i < 2000; i = i + 1) { s = s + i; }
            return s;
        }
    )");
    auto emu = sim::emulate(compiled.program, compiled.data);
    const auto full = schemes::compressFull(compiled.program);
    const auto stats = fetch::simulateFetch(
        full.image, compiled.program, emu.trace,
        fetch::FetchConfig::paper(SchemeClass::kCompressed));
    EXPECT_GT(double(stats.l0Hits) /
                  double(stats.l0Hits + stats.l0Misses),
              0.95);
    // With the L0 covering the loop, compressed IPC ~= ideal.
    EXPECT_GT(stats.ipc() / stats.idealIpc(), 0.95);
}

/**
 * End-to-end tiling invariant, the acceptance criterion of the
 * attribution work: for every scheme the per-cause aggregate counters
 * sum exactly to stallCycles, and with tracing on the same holds per
 * record and for the per-cause histograms.
 */
TEST(FetchSim, StallCausesTileStallCyclesAllSchemes)
{
    auto compiled = compiler::compileSource(R"(
        func f(x): int {
            if (x % 3 == 0) { return x * 2; }
            return x + 1;
        }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 400; i = i + 1) { s = s + f(i); }
            return s;
        }
    )");
    auto emu = sim::emulate(compiled.program, compiled.data);
    const auto base_image = isa::buildBaselineImage(compiled.program);
    const auto full = schemes::compressFull(compiled.program);

    for (auto scheme : {SchemeClass::kBase, SchemeClass::kTailored,
                        SchemeClass::kCompressed}) {
        const auto &image = scheme == SchemeClass::kCompressed
            ? full.image
            : base_image;
        auto config = fetch::FetchConfig::paper(scheme);
        config.trace.enabled = true;
        config.trace.ringCapacity = 0;  // keep every record
        const auto stats = fetch::simulateFetch(
            image, compiled.program, emu.trace, config);
        SCOPED_TRACE(schemeClassName(scheme));

        EXPECT_EQ(stats.mispredictStallCycles +
                      stats.refillStallCycles +
                      stats.decodeStallCycles + stats.atbStallCycles,
                  stats.stallCycles);
        EXPECT_GT(stats.stallCycles, 0u);
        if (scheme != SchemeClass::kCompressed) {
            EXPECT_EQ(stats.decodeStallCycles, 0u);
            EXPECT_EQ(stats.l0SavedCycles, 0u);
        }

        std::uint64_t rec_mispredict = 0, rec_refill = 0;
        std::uint64_t rec_decode = 0, rec_atb = 0, rec_stall = 0;
        for (const auto &rec : stats.trace.inOrder()) {
            EXPECT_EQ(rec.mispredictStall + rec.refillStall +
                          rec.decodeStall + rec.atbStall,
                      rec.stallCycles);
            rec_mispredict += rec.mispredictStall;
            rec_refill += rec.refillStall;
            rec_decode += rec.decodeStall;
            rec_atb += rec.atbStall;
            rec_stall += rec.stallCycles;
        }
        EXPECT_EQ(rec_mispredict, stats.mispredictStallCycles);
        EXPECT_EQ(rec_refill, stats.refillStallCycles);
        EXPECT_EQ(rec_decode, stats.decodeStallCycles);
        EXPECT_EQ(rec_atb, stats.atbStallCycles);
        EXPECT_EQ(rec_stall, stats.stallCycles);

        // Histograms sample the same population as the records; with
        // no overflow on this small program their weighted key sums
        // recover the aggregate counters exactly.
        const auto weighted = [](const support::Histogram &h) {
            std::uint64_t acc = 0;
            for (const auto &[key, weight] : h.bins())
                acc += std::uint64_t(key) * weight;
            return acc;
        };
        EXPECT_EQ(stats.mispredictHistogram.total(),
                  stats.blocksFetched);
        ASSERT_EQ(stats.mispredictHistogram.overflow(), 0u);
        ASSERT_EQ(stats.refillHistogram.overflow(), 0u);
        ASSERT_EQ(stats.decodeHistogram.overflow(), 0u);
        ASSERT_EQ(stats.atbHistogram.overflow(), 0u);
        EXPECT_EQ(weighted(stats.mispredictHistogram),
                  stats.mispredictStallCycles);
        EXPECT_EQ(weighted(stats.refillHistogram),
                  stats.refillStallCycles);
        EXPECT_EQ(weighted(stats.decodeHistogram),
                  stats.decodeStallCycles);
        EXPECT_EQ(weighted(stats.atbHistogram),
                  stats.atbStallCycles);
    }
}

} // namespace
