/**
 * @file
 * Power-model and decoder-cost tests: bus bit-flip accounting against
 * hand-computed sequences, and the paper's §3.5 transistor-count
 * formula evaluated at known points.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "decoder/complexity.hh"
#include "power/bitflips.hh"
#include "schemes/huffman_scheme.hh"
#include "schemes/tailored.hh"

namespace {

using namespace tepic;

TEST(BusModel, HandComputedFlips)
{
    power::BusModel bus(1);  // 1-byte bus for easy counting
    const std::uint8_t a[] = {0xff};
    bus.transfer(a);
    EXPECT_EQ(bus.bitFlips(), 8u);  // from idle 0x00 to 0xff
    const std::uint8_t b[] = {0xff};
    bus.transfer(b);
    EXPECT_EQ(bus.bitFlips(), 8u);  // unchanged bus: no flips
    const std::uint8_t c[] = {0x0f};
    bus.transfer(c);
    EXPECT_EQ(bus.bitFlips(), 12u);  // high nibble toggles
    EXPECT_EQ(bus.beats(), 3u);
    EXPECT_EQ(bus.bytesTransferred(), 3u);
}

TEST(BusModel, WideBusPadsWithZeros)
{
    power::BusModel bus(8);
    const std::uint8_t data[] = {0xff, 0xff, 0xff};  // one beat
    bus.transfer(data);
    EXPECT_EQ(bus.beats(), 1u);
    EXPECT_EQ(bus.bitFlips(), 24u);
    const std::uint8_t more[12] = {0};  // two beats of zeros
    bus.transfer(more);
    EXPECT_EQ(bus.beats(), 3u);
    EXPECT_EQ(bus.bitFlips(), 24u + 24u);  // first beat clears 24 ones
}

TEST(BusModel, StatePersistsAcrossTransfers)
{
    power::BusModel bus(2);
    const std::uint8_t a[] = {0xaa, 0xaa};
    const std::uint8_t b[] = {0x55, 0x55};
    bus.transfer(a);
    const auto after_a = bus.bitFlips();
    bus.transfer(b);
    EXPECT_EQ(bus.bitFlips() - after_a, 16u);  // full toggle
}

TEST(BusModel, WideBusCountsEveryLane)
{
    // Regression: widths beyond 8 bytes once silently truncated to
    // the first 8 lanes. A 16-byte bus must see flips in lanes 8..15.
    power::BusModel bus(16);
    std::uint8_t beat[16] = {0};
    beat[0] = 0xff;   // lane 0:  8 flips from idle
    beat[8] = 0xff;   // lane 8:  8 flips — lost before the fix
    beat[15] = 0x0f;  // lane 15: 4 flips — likewise
    bus.transfer(beat);
    EXPECT_EQ(bus.beats(), 1u);
    EXPECT_EQ(bus.bitFlips(), 20u);

    // Repeating the beat toggles nothing: the wide lanes keep state.
    bus.transfer(beat);
    EXPECT_EQ(bus.bitFlips(), 20u);

    // Clearing only the high lanes flips exactly those bits back.
    std::uint8_t clear[16] = {0};
    clear[0] = 0xff;
    bus.transfer(clear);
    EXPECT_EQ(bus.bitFlips(), 32u);  // lanes 8 and 15 return to zero
}

TEST(BusModel, WideBusPadsShortTailWithZeros)
{
    power::BusModel bus(12);  // non-power-of-two width
    std::uint8_t ones[12];
    for (std::uint8_t &byte : ones)
        byte = 0xff;
    bus.transfer(ones);
    EXPECT_EQ(bus.beats(), 1u);
    EXPECT_EQ(bus.bitFlips(), 96u);

    // A 4-byte transfer is one beat with 8 zero-padded tail lanes —
    // the pad clears the ones left on lanes 4..11.
    const std::uint8_t tail[4] = {0xff, 0xff, 0xff, 0xff};
    bus.transfer(tail);
    EXPECT_EQ(bus.beats(), 2u);
    EXPECT_EQ(bus.bitFlips(), 96u + 64u);
    EXPECT_EQ(bus.bytesTransferred(), 16u);
}

TEST(BusModel, NarrowAndWidePathsAgreeAtTheBoundary)
{
    // The 8-byte word path and the per-lane vector path must count
    // identically; drive both with the same beat sequence.
    power::BusModel narrow(8);
    power::BusModel wide(9);
    const std::uint8_t a[] = {0x12, 0x34, 0x56, 0x78,
                              0x9a, 0xbc, 0xde, 0xf0};
    const std::uint8_t b[] = {0x0f, 0xf0, 0xaa, 0x55,
                              0x00, 0xff, 0x33, 0xcc};
    narrow.transfer(a);
    narrow.transfer(b);
    // The 9-byte bus fits each 8-byte transfer in one beat; lane 8
    // stays zero throughout, so the flip count must match exactly.
    wide.transfer(a);
    wide.transfer(b);
    EXPECT_EQ(narrow.bitFlips(), wide.bitFlips());
    EXPECT_EQ(narrow.beats(), wide.beats());
}

TEST(DecoderCost, FormulaAtKnownPoints)
{
    // T = 2m(2^n - 1) + 4m(2^n - 2^(n-1) - 1) + 2n
    decoder::HuffmanDecoderParams p;
    p.n = 1;
    p.m = 8;
    p.k = 2;
    // 2*8*1 + 4*8*(2-1-1) + 2 = 16 + 0 + 2
    EXPECT_EQ(decoder::huffmanDecoderTransistors(p), 18u);

    p.n = 4;
    p.m = 8;
    // 2*8*15 + 4*8*(16-8-1) + 8 = 240 + 224 + 8
    EXPECT_EQ(decoder::huffmanDecoderTransistors(p), 472u);

    p.n = 16;
    p.m = 40;
    const std::uint64_t expect = 2ull * 40 * 65535 +
                                 4ull * 40 * (65536 - 32768 - 1) +
                                 32;
    EXPECT_EQ(decoder::huffmanDecoderTransistors(p), expect);
}

TEST(DecoderCost, GrowsWithDepthAndSymbolWidth)
{
    decoder::HuffmanDecoderParams small{8, 100, 8};
    decoder::HuffmanDecoderParams deeper{12, 100, 8};
    decoder::HuffmanDecoderParams wider{8, 100, 40};
    EXPECT_LT(decoder::huffmanDecoderTransistors(small),
              decoder::huffmanDecoderTransistors(deeper));
    EXPECT_LT(decoder::huffmanDecoderTransistors(small),
              decoder::huffmanDecoderTransistors(wider));
}

TEST(DecoderCost, SchemeOrderingOnRealProgram)
{
    auto compiled = compiler::compileSource(R"(
        var data[128];
        func work(a, b): int { return a * b + (a ^ b); }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 128; i = i + 1) {
                data[i] = work(i, s);
                s = s + data[i] % 97;
            }
            return s;
        }
    )");
    const auto &program = compiled.program;
    const auto byte_cost = decoder::decoderTransistors(
        schemes::compressByte(program));
    const auto full_cost = decoder::decoderTransistors(
        schemes::compressFull(program));
    const auto tailored_cost = decoder::tailoredDecoderTransistors(
        schemes::TailoredIsa::build(program));

    // The paper's Figure 10 ordering: tailored (a small PLA) is far
    // cheaper than any Huffman decoder; byte-wise is the smallest of
    // the Huffman options.
    EXPECT_LT(tailored_cost, byte_cost);
    EXPECT_LT(byte_cost, full_cost);
}

TEST(DecoderCost, TailoredPlaTracksOpcodeCount)
{
    auto tiny = compiler::compileSource(
        "func main(): int { return 1; }");
    auto bigger = compiler::compileSource(R"(
        var a[16];
        func main(): int {
            var s = 0;
            var f: float = 1.0;
            for (var i = 0; i < 16; i = i + 1) {
                a[i] = i * 3 - (i >> 1);
                s = s ^ a[i];
                f = f * 1.5;
            }
            return s + int(f) % 100;
        }
    )");
    const auto tiny_isa =
        schemes::TailoredIsa::build(tiny.program);
    const auto big_isa =
        schemes::TailoredIsa::build(bigger.program);
    EXPECT_LT(tiny_isa.distinctOpcodes(), big_isa.distinctOpcodes());
    EXPECT_LT(decoder::tailoredDecoderTransistors(tiny_isa),
              decoder::tailoredDecoderTransistors(big_isa));
}

} // namespace
