/**
 * @file
 * Front-end tests: lexer token streams, parser error reporting,
 * semantic checks in IR generation, and optimiser behaviour —
 * including the key safety property that optimisation never changes a
 * program's observable result.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "compiler/irgen.hh"
#include "compiler/lexer.hh"
#include "compiler/lower.hh"
#include "compiler/opt.hh"
#include "compiler/parser.hh"
#include "sim/emulator.hh"

namespace {

using namespace tepic::compiler;

TEST(Lexer, TokenKinds)
{
    const auto tokens =
        lex("func f() { var x = 0x1F + 2.5; } // comment");
    ASSERT_GE(tokens.size(), 12u);
    EXPECT_EQ(tokens[0].kind, TokKind::kKwFunc);
    EXPECT_EQ(tokens[1].kind, TokKind::kIdent);
    EXPECT_EQ(tokens[1].text, "f");
    EXPECT_EQ(tokens.back().kind, TokKind::kEof);

    bool saw_hex = false;
    bool saw_float = false;
    for (const auto &tok : tokens) {
        if (tok.kind == TokKind::kIntLit && tok.intValue == 0x1f)
            saw_hex = true;
        if (tok.kind == TokKind::kFloatLit && tok.floatValue == 2.5)
            saw_float = true;
    }
    EXPECT_TRUE(saw_hex);
    EXPECT_TRUE(saw_float);
}

TEST(Lexer, TwoCharOperators)
{
    const auto tokens = lex("<= >= == != << >> && ||");
    EXPECT_EQ(tokens[0].kind, TokKind::kLe);
    EXPECT_EQ(tokens[1].kind, TokKind::kGe);
    EXPECT_EQ(tokens[2].kind, TokKind::kEq);
    EXPECT_EQ(tokens[3].kind, TokKind::kNe);
    EXPECT_EQ(tokens[4].kind, TokKind::kShl);
    EXPECT_EQ(tokens[5].kind, TokKind::kShr);
    EXPECT_EQ(tokens[6].kind, TokKind::kAndAnd);
    EXPECT_EQ(tokens[7].kind, TokKind::kOrOr);
}

TEST(Lexer, LineNumbersAndErrors)
{
    const auto tokens = lex("a\nb\n  c");
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[1].line, 2u);
    EXPECT_EQ(tokens[2].line, 3u);
    EXPECT_EQ(tokens[2].col, 3u);
    EXPECT_ANY_THROW(lex("@"));
    EXPECT_ANY_THROW(lex("/* unterminated"));
}

TEST(Lexer, BlockComments)
{
    const auto tokens = lex("a /* b \n c */ d");
    ASSERT_EQ(tokens.size(), 3u);  // a, d, eof
    EXPECT_EQ(tokens[1].text, "d");
}

TEST(Parser, RejectsSyntaxErrors)
{
    EXPECT_ANY_THROW(parse("func f( { }"));
    EXPECT_ANY_THROW(parse("func f() { var; }"));
    EXPECT_ANY_THROW(parse("func f() { if x { } }"));
    EXPECT_ANY_THROW(parse("var g[0];"));  // zero-size array
    EXPECT_ANY_THROW(parse("junk"));
}

TEST(Parser, Precedence)
{
    // 2 + 3 * 4 parses as 2 + (3 * 4): check through execution.
    const auto ast = parse("func main(): int { return 2 + 3 * 4; }");
    ASSERT_EQ(ast.functions.size(), 1u);
    const auto &ret_stmt = *ast.functions[0].body->stmts[0];
    ASSERT_EQ(ret_stmt.kind, StmtKind::kReturn);
    const auto &e = *ret_stmt.value;
    ASSERT_EQ(e.kind, ExprKind::kBinary);
    EXPECT_EQ(e.binOp, BinOp::kAdd);
    EXPECT_EQ(e.rhs->kind, ExprKind::kBinary);
    EXPECT_EQ(e.rhs->binOp, BinOp::kMul);
}

TEST(Parser, ElseIfChains)
{
    const auto ast = parse(R"(
        func main(): int {
            var x = 1;
            if (x == 0) { x = 1; }
            else if (x == 1) { x = 2; }
            else { x = 3; }
            return x;
        }
    )");
    const auto &if_stmt = *ast.functions[0].body->stmts[1];
    ASSERT_EQ(if_stmt.kind, StmtKind::kIf);
    ASSERT_NE(if_stmt.elseBody, nullptr);
    EXPECT_EQ(if_stmt.elseBody->kind, StmtKind::kIf);
}

TEST(IrGen, SemanticErrors)
{
    EXPECT_ANY_THROW(generateIr(
        parse("func main(): int { return missing; }")));
    EXPECT_ANY_THROW(generateIr(
        parse("func main(): int { return nofunc(1); }")));
    EXPECT_ANY_THROW(generateIr(parse(
        "func f(a): int { return a; }"
        "func main(): int { return f(1, 2); }")));
    EXPECT_ANY_THROW(generateIr(parse(
        "func main(): int { break; return 0; }")));
    EXPECT_ANY_THROW(generateIr(parse(
        "func main(): int { var a[4]; return a; }")));
    EXPECT_ANY_THROW(generateIr(parse(
        "func v() { return 1; } func main(): int { return 0; }")));
    EXPECT_ANY_THROW(generateIr(parse(
        "var g; var g; func main(): int { return 0; }")));
    EXPECT_ANY_THROW(generateIr(parse(
        "func main(): int { var x = 1; var x = 2; return x; }")));
}

TEST(IrGen, MissingMainCaughtAtLowering)
{
    auto module = generateIr(parse("func helper(): int { return 1; }"));
    EXPECT_ANY_THROW(lower(module));
}

namespace {

std::int32_t
runWith(const std::string &source, const OptConfig &opt)
{
    CompileOptions options;
    options.opt = opt;
    auto compiled = compileSource(source, options);
    return tepic::sim::emulate(compiled.program, compiled.data)
        .exitValue;
}

std::size_t
opCountWith(const std::string &source, const OptConfig &opt)
{
    CompileOptions options;
    options.opt = opt;
    return compileSource(source, options).program.opCount();
}

} // namespace

TEST(Optimiser, NeverChangesResults)
{
    // The gold property: -O0 and -O2 agree, across language features.
    const char *programs[] = {
        "func main(): int { return 1 + 2 * 3 - 4 / 2; }",
        R"(func main(): int {
            var s = 0;
            for (var i = 0; i < 37; i = i + 1) {
                if (i % 3 == 0) { s = s + i * 2; }
                else { s = s - i; }
            }
            return s;
        })",
        R"(func h(a, b): int { return a * 31 + b; }
        func main(): int {
            var acc = 7;
            for (var i = 0; i < 10; i = i + 1) { acc = h(acc, i); }
            return acc;
        })",
        R"(var tbl[32];
        func main(): int {
            for (var i = 0; i < 32; i = i + 1) { tbl[i] = i * i; }
            var s = 0;
            for (var i = 31; i >= 0; i = i - 1) { s = s ^ tbl[i]; }
            return s;
        })",
        R"(func main(): int {
            var x: float = 0.5;
            var s = 0;
            while (x < 100.0) { x = x * 1.5; s = s + 1; }
            return s + int(x);
        })",
    };
    for (const char *src : programs) {
        EXPECT_EQ(runWith(src, OptConfig::all()),
                  runWith(src, OptConfig::none()))
            << src;
    }
}

TEST(Optimiser, FoldsConstants)
{
    const char *src =
        "func main(): int { return (2 + 3) * (10 - 6); }";
    EXPECT_LT(opCountWith(src, OptConfig::all()),
              opCountWith(src, OptConfig::none()));
    EXPECT_EQ(runWith(src, OptConfig::all()), 20);
}

TEST(Optimiser, EliminatesDeadCode)
{
    const char *src = R"(
        func main(): int {
            var dead1 = 111 * 7;
            var dead2 = dead1 + 5;
            return 3;
        }
    )";
    EXPECT_LT(opCountWith(src, OptConfig::all()),
              opCountWith(src, OptConfig::none()));
}

TEST(Optimiser, CseReusesAddressArithmetic)
{
    const char *src = R"(
        var a[64];
        func main(): int {
            var i = 5;
            a[i] = 10;
            return a[i] + a[i];
        }
    )";
    EXPECT_EQ(runWith(src, OptConfig::all()), 20);
    EXPECT_LT(opCountWith(src, OptConfig::all()),
              opCountWith(src, OptConfig::none()));
}

TEST(Optimiser, FoldsConstantBranches)
{
    const char *src = R"(
        func main(): int {
            if (1 < 2) { return 5; }
            return 6;
        }
    )";
    auto compiled = compileSource(src);
    EXPECT_EQ(tepic::sim::emulate(compiled.program,
                                  compiled.data).exitValue, 5);
    // The never-taken side must be gone entirely.
    EXPECT_LE(compiled.program.blocks().size(), 2u);
}

TEST(Compiler, SchedulerHonoursIssueWidth)
{
    // A machine of width 1 still computes the same result.
    const char *src = R"(
        func main(): int {
            var a = 1; var b = 2; var c = 3; var d = 4;
            return (a + b) * (c + d) + (a ^ d) - (b & c);
        }
    )";
    CompileOptions narrow;
    narrow.machine.issueWidth = 1;
    narrow.machine.memoryUnits = 1;
    auto wide = compileSource(src);
    auto thin = compileSource(src, narrow);
    EXPECT_EQ(tepic::sim::emulate(wide.program, wide.data).exitValue,
              tepic::sim::emulate(thin.program, thin.data).exitValue);
    // Width-1 MOPs are singletons.
    for (const auto &blk : thin.program.blocks())
        for (const auto &mop : blk.mops)
            EXPECT_EQ(mop.size(), 1u);
    EXPECT_GE(wide.schedStats.ilp(), thin.schedStats.ilp());
}

TEST(Compiler, RegisterPressureSpillsCorrectly)
{
    // 30 simultaneously-live values exceed the allocatable pools and
    // force spill code; the result must still be exact.
    std::string src = "func main(): int {\n";
    for (int i = 0; i < 30; ++i) {
        src += "    var v" + std::to_string(i) + " = " +
               std::to_string(i * 7 + 1) + ";\n";
    }
    // Keep all alive until the end.
    src += "    var s = 0;\n";
    for (int i = 0; i < 30; ++i)
        src += "    s = s * 3 + v" + std::to_string(i) + ";\n";
    src += "    return s;\n}\n";

    std::int64_t expected = 0;
    for (int i = 0; i < 30; ++i)
        expected = std::int32_t(expected * 3 + (i * 7 + 1));
    EXPECT_EQ(runWith(src, OptConfig::all()),
              std::int32_t(expected));
    EXPECT_EQ(runWith(src, OptConfig::none()),
              std::int32_t(expected));
}

TEST(Compiler, EveryBlockEndsAtomically)
{
    // No interior branches, tail bits intact — validate() enforces
    // both; exercised on a call/loop heavy program.
    const char *src = R"(
        func f(x): int { if (x > 0) { return f(x - 1) + 1; } return 0; }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 5; i = i + 1) { s = s + f(i); }
            return s;
        }
    )";
    auto compiled = compileSource(src);
    // validate() ran inside scheduleProgram; re-run explicitly.
    compiled.program.validate(tepic::isa::MachineConfig::paperDefault());
    EXPECT_EQ(tepic::sim::emulate(compiled.program,
                                  compiled.data).exitValue, 10);
}

} // namespace
