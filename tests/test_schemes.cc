/**
 * @file
 * Compression-scheme tests: stream configurations, Huffman image
 * round trips over all alphabets, tailored-ISA structure and round
 * trip, block alignment discipline, and the size orderings the
 * paper's Figure 5 rests on.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "schemes/dictionary.hh"
#include "schemes/huffman_scheme.hh"
#include "schemes/stream_config.hh"
#include "schemes/tailored.hh"

namespace {

using namespace tepic;
using schemes::CompressedImage;

const isa::VliwProgram &
sampleProgram()
{
    static const compiler::CompiledProgram compiled =
        compiler::compileSource(R"(
        var table[64];
        func mix(a, b): int { return (a * 31 + b) ^ (a >> 3); }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 64; i = i + 1) {
                table[i] = mix(i, s);
                s = s + table[i];
                if (s % 7 == 0) { s = s + 1; }
            }
            var f: float = 1.5;
            f = f * 2.0 + 0.25;
            return s + int(f);
        }
    )");
    return compiled.program;
}

void
expectSameOps(const std::vector<std::vector<isa::Operation>> &decoded,
              const isa::VliwProgram &program)
{
    ASSERT_EQ(decoded.size(), program.blocks().size());
    for (const auto &blk : program.blocks()) {
        std::size_t i = 0;
        for (const auto &mop : blk.mops) {
            for (const auto &op : mop.ops()) {
                ASSERT_LT(i, decoded[blk.id].size());
                EXPECT_EQ(decoded[blk.id][i], op);
                ++i;
            }
        }
        EXPECT_EQ(i, decoded[blk.id].size());
    }
}

TEST(StreamConfigs, SixConfigsCoverFortyBits)
{
    const auto &configs = schemes::allStreamConfigs();
    EXPECT_EQ(configs.size(), 6u);
    for (const auto &cfg : configs) {
        unsigned total = 0;
        for (unsigned w : cfg.widths)
            total += w;
        EXPECT_EQ(total, isa::kOpBits) << cfg.name;
    }
    EXPECT_ANY_THROW(schemes::streamConfigByName("nope"));
    EXPECT_EQ(schemes::streamConfigByName("quarters").widths.size(),
              4u);
}

TEST(HuffmanSchemes, ByteRoundTrip)
{
    const auto &program = sampleProgram();
    const CompressedImage img = schemes::compressByte(program);
    expectSameOps(schemes::decompress(img), program);
    EXPECT_EQ(img.tables.size(), 1u);
    EXPECT_EQ(img.symbolBits[0], 8u);
    EXPECT_LE(img.tables[0].size(), 256u);
}

TEST(HuffmanSchemes, FullRoundTrip)
{
    const auto &program = sampleProgram();
    const CompressedImage img = schemes::compressFull(program);
    expectSameOps(schemes::decompress(img), program);
    EXPECT_EQ(img.symbolBits[0], 40u);
}

class StreamRoundTrip
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(StreamRoundTrip, RoundTrips)
{
    const auto &program = sampleProgram();
    const auto &cfg = schemes::streamConfigByName(GetParam());
    const CompressedImage img = schemes::compressStream(program, cfg);
    expectSameOps(schemes::decompress(img), program);
    EXPECT_EQ(img.tables.size(), cfg.widths.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, StreamRoundTrip,
    ::testing::Values("hdr-src-mid-tail", "hdr-body-dest-pred",
                      "quarters", "tsopt-opc-body-pred",
                      "hdr-r1-r2-rest", "bytes5"),
    [](const auto &info) {
        std::string name = info.param;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(HuffmanSchemes, BlocksAreByteAligned)
{
    const auto &program = sampleProgram();
    for (const auto &img :
         {schemes::compressByte(program),
          schemes::compressFull(program)}) {
        for (const auto &layout : img.image.blocks)
            EXPECT_EQ(layout.bitOffset % 8, 0u);
    }
}

TEST(HuffmanSchemes, CompressionActuallyCompresses)
{
    const auto &program = sampleProgram();
    const std::size_t base = program.baselineBits();
    EXPECT_LT(schemes::compressFull(program).image.bitSize, base);
    EXPECT_LT(schemes::compressByte(program).image.bitSize, base);
    // Full beats byte (it can exploit whole-op redundancy).
    EXPECT_LT(schemes::compressFull(program).image.bitSize,
              schemes::compressByte(program).image.bitSize);
}

TEST(HuffmanSchemes, MaxCodeLengthRespected)
{
    const auto &program = sampleProgram();
    schemes::HuffmanOptions opts;
    opts.maxCodeLength = 11;
    opts.byteMaxCodeLength = 9;
    const auto full = schemes::compressFull(program, opts);
    EXPECT_LE(full.tables[0].maxCodeLength(), 11u);
    const auto byte = schemes::compressByte(program, opts);
    EXPECT_LE(byte.tables[0].maxCodeLength(), 9u);
}

TEST(Tailored, RoundTrip)
{
    const auto &program = sampleProgram();
    const auto isa = schemes::TailoredIsa::build(program);
    const auto image = isa.encode(program);
    expectSameOps(isa.decode(image), program);
}

TEST(Tailored, SmallerThanBaselineButUncompressed)
{
    const auto &program = sampleProgram();
    const auto isa = schemes::TailoredIsa::build(program);
    const auto image = isa.encode(program);
    EXPECT_LT(image.bitSize, program.baselineBits());
    // Uncompressed property: every op of the same (type, code) has
    // the same size, so block size is the sum of per-op sizes.
    for (const auto &blk : program.blocks()) {
        unsigned bits = 0;
        for (const auto &mop : blk.mops)
            for (const auto &op : mop.ops())
                bits += isa.opBits(op.opType(), op.opcode());
        EXPECT_EQ(image.blocks[blk.id].bitSize, bits);
    }
}

TEST(Tailored, HeaderIsFixed)
{
    const auto &program = sampleProgram();
    const auto isa = schemes::TailoredIsa::build(program);
    // Header: tail + optype + opcode, identical for every op (§2.3:
    // "fixed position and possibly fixed size... simplifies decoding").
    EXPECT_EQ(isa.headerBits(),
              1 + isa.opTypeWidth() + isa.opcodeWidth());
    EXPECT_LE(isa.opTypeWidth(), 2u);
    EXPECT_LE(isa.opcodeWidth(), 5u);
}

TEST(Tailored, ConstantFieldsVanish)
{
    // A program with one op type, few registers: tailored fields for
    // unused values collapse to zero or tiny widths.
    auto compiled = compiler::compileSource(
        "func main(): int { return 5; }");
    const auto isa = schemes::TailoredIsa::build(compiled.program);
    const auto image = isa.encode(compiled.program);
    // The baseline has 40-bit ops; tailored must be far below.
    EXPECT_LT(double(image.bitSize) /
                  double(compiled.program.baselineBits()),
              0.7);
    // The guard predicate is always p0 in this program: its tailored
    // width must be zero in every used format.
    for (unsigned f = 0; f < tepic::isa::kNumFormats; ++f) {
        const auto &tf = isa.format(tepic::isa::Format(f));
        if (!tf.used)
            continue;
        for (const auto &field : tf.fields) {
            if (field.kind == tepic::isa::FieldKind::kPred)
                EXPECT_EQ(field.width, 0u);
        }
    }
}

TEST(Tailored, VerilogEmission)
{
    const auto &program = sampleProgram();
    const auto isa = schemes::TailoredIsa::build(program);
    const std::string verilog = isa.emitVerilog("tailored_decoder");
    EXPECT_NE(verilog.find("module tailored_decoder"),
              std::string::npos);
    EXPECT_NE(verilog.find("endmodule"), std::string::npos);
    EXPECT_NE(verilog.find("case ({opt, opc})"), std::string::npos);
    // One case arm per used (type, opcode) pair.
    std::size_t arms = 0;
    std::size_t pos = 0;
    while ((pos = verilog.find(": begin", pos)) != std::string::npos) {
        ++arms;
        pos += 7;
    }
    EXPECT_EQ(arms, isa.distinctOpcodes());
}

TEST(Dictionary, RoundTrip)
{
    const auto &program = sampleProgram();
    const auto img = schemes::compressDictionary(program);
    expectSameOps(schemes::decompressDictionary(img), program);
    EXPECT_GT(img.hitRate(), 0.0);
    EXPECT_LE(img.hitRate(), 1.0);
    for (const auto &layout : img.image.blocks)
        EXPECT_EQ(layout.bitOffset % 8, 0u);
}

TEST(Dictionary, SmallDictionaryStillRoundTrips)
{
    const auto &program = sampleProgram();
    schemes::DictionaryOptions opts;
    opts.entries = 4;
    const auto img = schemes::compressDictionary(program, opts);
    expectSameOps(schemes::decompressDictionary(img), program);
    EXPECT_EQ(img.indexBits, 2u);
    EXPECT_GT(img.escapeOps, 0u);
}

TEST(Dictionary, BiggerDictionaryCompressesBetter)
{
    const auto &program = sampleProgram();
    schemes::DictionaryOptions small;
    small.entries = 16;
    schemes::DictionaryOptions big;
    big.entries = 512;
    const auto s = schemes::compressDictionary(program, small);
    const auto b = schemes::compressDictionary(program, big);
    // More entries -> more hits (monotone, unlike total size: the
    // index also widens).
    EXPECT_GE(b.hitOps, s.hitOps);
    EXPECT_LT(b.image.bitSize, program.baselineBits());
}

TEST(Dictionary, HuffmanFullBeatsDictionary)
{
    // The paper's implicit argument vs CodePack/Liao: entropy coding
    // over the same symbols cannot lose to fixed-index coding.
    const auto &program = sampleProgram();
    const auto dict = schemes::compressDictionary(program);
    const auto full = schemes::compressFull(program);
    EXPECT_LE(full.image.bitSize, dict.image.bitSize);
    EXPECT_GT(schemes::dictionaryDecoderTransistors(dict), 0u);
}

TEST(Tailored, SizeOrderingVsHuffman)
{
    // The paper's Figure 5 ordering: full < tailored < base, with
    // tailored paying no decompression. (Byte/stream fall between
    // full and base; exact order vs tailored is workload dependent.)
    const auto &program = sampleProgram();
    const auto full = schemes::compressFull(program);
    const auto isa = schemes::TailoredIsa::build(program);
    const auto tailored = isa.encode(program);
    EXPECT_LT(full.image.bitSize, tailored.bitSize);
    EXPECT_LT(tailored.bitSize, program.baselineBits());
}

} // namespace
