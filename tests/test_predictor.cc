/**
 * @file
 * Direction-predictor tests: bimodal behaviour through the ATB,
 * gshare pattern learning, PAs per-address history, and the fetch-sim
 * integration (alternating patterns that defeat 2-bit counters but
 * not history-based predictors).
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "fetch/fetch_sim.hh"
#include "fetch/predictor.hh"
#include "isa/baseline.hh"
#include "sim/emulator.hh"

namespace {

using namespace tepic;
using fetch::DirectionPredictor;
using fetch::PredictorConfig;
using fetch::PredictorKind;

TEST(Predictor, Names)
{
    EXPECT_STREQ(fetch::predictorKindName(PredictorKind::kBimodal),
                 "2bit");
    EXPECT_STREQ(fetch::predictorKindName(PredictorKind::kGshare),
                 "gshare");
    EXPECT_STREQ(fetch::predictorKindName(PredictorKind::kPas), "PAs");
}

TEST(Predictor, BimodalUsesEntryCounter)
{
    PredictorConfig config;
    config.kind = PredictorKind::kBimodal;
    DirectionPredictor pred(config);
    EXPECT_FALSE(pred.predictTaken(5, 0));
    EXPECT_FALSE(pred.predictTaken(5, 1));
    EXPECT_TRUE(pred.predictTaken(5, 2));
    EXPECT_TRUE(pred.predictTaken(5, 3));
}

TEST(Predictor, GshareLearnsAlternation)
{
    // Pattern T,N,T,N... defeats a 2-bit counter (hovers around the
    // threshold) but is perfectly predictable from 1 history bit.
    PredictorConfig config;
    config.kind = PredictorKind::kGshare;
    config.gshareHistoryBits = 8;
    DirectionPredictor pred(config);

    const isa::BlockId block = 17;
    // Warm up.
    for (int i = 0; i < 64; ++i)
        pred.update(block, i % 2 == 0);
    // Measure.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool actual = i % 2 == 0;
        if (pred.predictTaken(block, 1) == actual)
            ++correct;
        pred.update(block, actual);
    }
    EXPECT_GT(correct, 95);
}

TEST(Predictor, PasSeparatesBlocks)
{
    // Two blocks with opposite constant behaviour: per-address
    // history keeps them apart.
    PredictorConfig config;
    config.kind = PredictorKind::kPas;
    config.pasHistoryBits = 4;
    DirectionPredictor pred(config);
    for (int i = 0; i < 32; ++i) {
        pred.update(1, true);
        pred.update(2, false);
    }
    EXPECT_TRUE(pred.predictTaken(1, 1));
    EXPECT_FALSE(pred.predictTaken(2, 1));
}

TEST(Predictor, PasLearnsPeriodicPattern)
{
    // Period-3 pattern T,T,N — invisible to a 2-bit counter, clear
    // with >= 2 bits of local history.
    PredictorConfig config;
    config.kind = PredictorKind::kPas;
    config.pasHistoryBits = 6;
    DirectionPredictor pred(config);
    const isa::BlockId block = 9;
    for (int i = 0; i < 120; ++i)
        pred.update(block, i % 3 != 2);
    int correct = 0;
    for (int i = 0; i < 99; ++i) {
        const bool actual = i % 3 != 2;
        if (pred.predictTaken(block, 1) == actual)
            ++correct;
        pred.update(block, actual);
    }
    EXPECT_GT(correct, 90);
}

TEST(Predictor, BadConfigsRejected)
{
    PredictorConfig config;
    config.kind = PredictorKind::kGshare;
    config.gshareHistoryBits = 0;
    EXPECT_ANY_THROW(DirectionPredictor{config});
    config.gshareHistoryBits = 30;
    EXPECT_ANY_THROW(DirectionPredictor{config});
}

TEST(Predictor, FetchSimAlternatingBranchBenefitsFromHistory)
{
    // A loop whose branch alternates taken/not-taken every iteration:
    // gshare should predict it nearly perfectly; 2-bit should not.
    auto compiled = compiler::compileSource(R"(
        func main(): int {
            var s = 0;
            for (var i = 0; i < 4000; i = i + 1) {
                if (i % 2 == 0) { s = s + 3; } else { s = s - 1; }
            }
            return s;
        }
    )");
    auto emu = sim::emulate(compiled.program, compiled.data);
    const auto image = isa::buildBaselineImage(compiled.program);

    auto run = [&](PredictorKind kind) {
        auto config =
            fetch::FetchConfig::paper(fetch::SchemeClass::kBase);
        config.predictor.kind = kind;
        return fetch::simulateFetch(image, compiled.program,
                                    emu.trace, config);
    };
    const auto bimodal = run(PredictorKind::kBimodal);
    const auto gshare = run(PredictorKind::kGshare);
    EXPECT_GT(gshare.predictionAccuracy(),
              bimodal.predictionAccuracy() + 0.05);
    EXPECT_GT(gshare.ipc(), bimodal.ipc());
    EXPECT_EQ(compiled.program.blocks().size() > 0, true);
    EXPECT_EQ(emu.exitValue, 4000 / 2 * 3 - 4000 / 2);
}

} // namespace
