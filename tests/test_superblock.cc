/**
 * @file
 * Complex-fetch-unit tests: unit formation respects side-entrance /
 * side-exit / call constraints, geometry is consistent, and the unit
 * simulator conserves the op stream while reducing ATT entries and
 * predictions.
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "core/artifact_engine.hh"
#include "core/pipeline.hh"
#include "fetch/superblock.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;

struct Built
{
    compiler::CompiledProgram compiled;
    sim::EmulationResult emu;
    isa::Image image;
};

Built
build(const char *src)
{
    Built b;
    b.compiled = compiler::compileSource(src);
    b.emu = sim::emulate(b.compiled.program, b.compiled.data);
    b.image = isa::buildBaselineImage(b.compiled.program);
    return b;
}

const char *kBiasedLoop = R"(
    func main(): int {
        var s = 0;
        for (var i = 0; i < 3000; i = i + 1) {
            if (i % 100 == 0) { s = s + 1000; }  // rare side path
            s = s + i;
            if (i % 97 == 0) { s = s ^ 5; }      // rare again
            s = s * 3;
        }
        return s;
    }
)";

TEST(FetchUnits, FormationBasics)
{
    Built b = build(kBiasedLoop);
    const auto units = fetch::formFetchUnits(b.compiled.program,
                                             b.emu.trace);
    EXPECT_EQ(units.headOf.size(), b.compiled.program.blocks().size());
    EXPECT_GT(units.multiBlockUnits, 0u);
    EXPECT_LT(units.units, b.compiled.program.blocks().size());
    // Partition sanity: every block's head is a head; members are
    // consecutive.
    for (std::size_t blk = 0; blk < units.headOf.size(); ++blk) {
        const isa::BlockId head = units.headOf[blk];
        EXPECT_TRUE(units.isHead(head));
        EXPECT_GE(isa::BlockId(blk), head);
        EXPECT_LT(isa::BlockId(blk), head + units.lengthOf[head]);
    }
}

TEST(FetchUnits, CallsAreNeverAbsorbed)
{
    Built b = build(R"(
        func f(x): int { return x + 1; }
        func main(): int {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) { s = s + f(i); }
            return s;
        }
    )");
    const auto units = fetch::formFetchUnits(b.compiled.program,
                                             b.emu.trace);
    // A block ending in call/ret must be a unit tail (its follower
    // starts a new unit).
    for (const auto &blk : b.compiled.program.blocks()) {
        bool call_or_ret = false;
        if (!blk.mops.empty())
            for (const auto &op : blk.mops.back().ops())
                if (op.isBranch() &&
                    (op.opcode() == isa::Opcode::kCall ||
                     op.opcode() == isa::Opcode::kRet))
                    call_or_ret = true;
        if (call_or_ret && blk.id + 1 < units.headOf.size())
            EXPECT_TRUE(units.isHead(isa::BlockId(blk.id + 1)))
                << "block " << blk.id;
    }
}

TEST(FetchUnits, SimulationConservesOpsAndCutsPredictions)
{
    Built b = build(kBiasedLoop);
    const auto units = fetch::formFetchUnits(b.compiled.program,
                                             b.emu.trace);
    const auto config =
        fetch::FetchConfig::paper(fetch::SchemeClass::kBase);
    const auto plain = fetch::simulateFetch(
        b.image, b.compiled.program, b.emu.trace, config);
    const auto unit = fetch::simulateUnitFetch(
        b.image, b.compiled.program, b.emu.trace, units, config);

    EXPECT_EQ(unit.fetch.opsDelivered, plain.opsDelivered);
    EXPECT_EQ(unit.fetch.idealCycles, plain.idealCycles);
    EXPECT_EQ(unit.fetch.blocksFetched, plain.blocksFetched);
    // One prediction per unit traversal, not per block.
    EXPECT_LT(unit.fetch.predictionsCorrect +
                  unit.fetch.predictionsWrong,
              plain.predictionsCorrect + plain.predictionsWrong);
    EXPECT_LT(unit.attEntries, b.compiled.program.blocks().size());
    EXPECT_LE(unit.sideExitRate(), 1.0);
}

TEST(FetchUnits, DegenerateUnitsMatchPlainSim)
{
    // With absorption disabled (maxBlocks = 1) the unit simulator
    // must agree with the plain one on every headline number.
    Built b = build(kBiasedLoop);
    fetch::FetchUnitConfig no_merge;
    no_merge.maxBlocks = 1;
    const auto units = fetch::formFetchUnits(b.compiled.program,
                                             b.emu.trace, no_merge);
    EXPECT_EQ(units.units, b.compiled.program.blocks().size());
    const auto config =
        fetch::FetchConfig::paper(fetch::SchemeClass::kBase);
    const auto plain = fetch::simulateFetch(
        b.image, b.compiled.program, b.emu.trace, config);
    const auto unit = fetch::simulateUnitFetch(
        b.image, b.compiled.program, b.emu.trace, units, config);
    EXPECT_EQ(unit.fetch.cycles, plain.cycles);
    EXPECT_EQ(unit.fetch.l1Misses, plain.l1Misses);
    EXPECT_EQ(unit.fetch.predictionsWrong, plain.predictionsWrong);
    EXPECT_EQ(unit.fetch.busBitFlips, plain.busBitFlips);
    EXPECT_EQ(unit.sideExits, 0u);
}

TEST(FetchUnits, WorksOnRealWorkloads)
{
    for (const char *name : {"go", "m88ksim"}) {
        // Unit formation needs only the baseline image + the trace.
        const auto artifacts = core::ArtifactEngine::buildUncached(
            workloads::workloadByName(name).source,
            core::ArtifactRequest{core::ArtifactKind::kBase,
                                  core::ArtifactKind::kTrace},
            {});
        const auto units = fetch::formFetchUnits(
            artifacts.compiled.program, artifacts.execution.trace);
        const auto config =
            fetch::FetchConfig::paper(fetch::SchemeClass::kBase);
        const auto unit = fetch::simulateUnitFetch(
            artifacts.baseImage(), artifacts.compiled.program,
            artifacts.execution.trace, units, config);
        EXPECT_EQ(unit.fetch.opsDelivered,
                  artifacts.execution.dynamicOps)
            << name;
        EXPECT_GT(unit.fetch.ipc(), 0.5) << name;
    }
}

} // namespace
