/**
 * @file
 * TEPIC ISA tests: format layouts against Table 2 of the paper,
 * encode/decode round trips across all formats, MOP invariants, and
 * baseline image construction.
 */

#include <gtest/gtest.h>

#include "isa/baseline.hh"
#include "isa/machine.hh"
#include "isa/operation.hh"
#include "isa/program.hh"
#include "support/rng.hh"

namespace {

using namespace tepic::isa;

TEST(IsaFormats, AllFormatsAreFortyBits)
{
    for (unsigned f = 0; f < kNumFormats; ++f) {
        unsigned total = 0;
        for (const auto &spec : formatFields(Format(f)))
            total += spec.width;
        EXPECT_EQ(total, kOpBits) << formatName(Format(f));
    }
}

TEST(IsaFormats, AllFormatsShareTheHeader)
{
    // Every format starts T(1) S(1) OPT(2) OPCODE(5): the decoder
    // selects the format after 9 bits (§2.3 relies on this).
    for (unsigned f = 0; f < kNumFormats; ++f) {
        const auto fields = formatFields(Format(f));
        ASSERT_GE(fields.size(), 4u);
        EXPECT_EQ(fields[0].kind, FieldKind::kTail);
        EXPECT_EQ(fields[0].width, 1u);
        EXPECT_EQ(fields[1].kind, FieldKind::kSpec);
        EXPECT_EQ(fields[1].width, 1u);
        EXPECT_EQ(fields[2].kind, FieldKind::kOpType);
        EXPECT_EQ(fields[2].width, 2u);
        EXPECT_EQ(fields[3].kind, FieldKind::kOpcode);
        EXPECT_EQ(fields[3].width, 5u);
    }
}

TEST(IsaFormats, Table2SpotChecks)
{
    // Load-immediate carries a 20-bit immediate; branch a 16-bit
    // target; IntCmpp a 3-bit D1 modifier (Table 2).
    auto has_field = [](Format f, FieldKind kind, unsigned width) {
        for (const auto &spec : formatFields(f))
            if (spec.kind == kind && spec.width == width)
                return true;
        return false;
    };
    EXPECT_TRUE(has_field(Format::kLoadImm, FieldKind::kImm, 20));
    EXPECT_TRUE(has_field(Format::kBranch, FieldKind::kTarget, 16));
    EXPECT_TRUE(has_field(Format::kIntCmpp, FieldKind::kD1, 3));
    EXPECT_TRUE(has_field(Format::kLoad, FieldKind::kLat, 5));
    EXPECT_TRUE(has_field(Format::kFloatAlu, FieldKind::kSd, 1));
    EXPECT_TRUE(has_field(Format::kStore, FieldKind::kTcs, 2));
}

TEST(IsaFormats, FormatSelection)
{
    EXPECT_EQ(formatFor(OpType::kInt, Opcode::kAdd), Format::kIntAlu);
    EXPECT_EQ(formatFor(OpType::kInt, Opcode::kLdi), Format::kLoadImm);
    EXPECT_EQ(formatFor(OpType::kInt, Opcode::kCmppLt),
              Format::kIntCmpp);
    EXPECT_EQ(formatFor(OpType::kFloat, Opcode::kFadd),
              Format::kFloatAlu);
    EXPECT_EQ(formatFor(OpType::kMemory, Opcode::kLoad), Format::kLoad);
    EXPECT_EQ(formatFor(OpType::kMemory, Opcode::kFstore),
              Format::kStore);
    EXPECT_EQ(formatFor(OpType::kBranch, Opcode::kBrct),
              Format::kBranch);
}

TEST(Operation, EncodeDecodeSimple)
{
    Operation op = Operation::make(OpType::kInt, Opcode::kAdd);
    op.setDest(3);
    op.setSrc1(1);
    op.setSrc2(2);
    op.setPred(0);
    op.setTail(true);
    const Operation back = Operation::decode(op.encode());
    EXPECT_EQ(back, op);
    EXPECT_TRUE(back.tail());
    EXPECT_EQ(back.dest(), 3u);
}

TEST(Operation, ReservedBitsEncodeAsZero)
{
    Operation op = Operation::make(OpType::kInt, Opcode::kAdd);
    const std::uint64_t bits = op.encode();
    // Bits 13..20 (from MSB of the 40) are the IntAlu reserved field.
    EXPECT_EQ((bits >> 11) & 0xff, 0u);
}

TEST(Operation, SettingReservedNonZeroPanics)
{
    Operation op = Operation::make(OpType::kInt, Opcode::kAdd);
    EXPECT_ANY_THROW(op.setField(FieldKind::kReserved, 1));
}

TEST(Operation, OverflowingFieldPanicsOnEncode)
{
    Operation op = Operation::make(OpType::kInt, Opcode::kAdd);
    op.setDest(40);  // 5-bit field
    EXPECT_FALSE(op.valid());
    EXPECT_ANY_THROW(op.encode());
}

TEST(Operation, ToStringDisassembles)
{
    Operation op = Operation::make(OpType::kInt, Opcode::kAdd);
    op.setDest(3);
    op.setSrc1(1);
    op.setSrc2(2);
    EXPECT_EQ(op.toString(), "add r3, r1, r2");
    op.setPred(7);
    op.setTail(true);
    EXPECT_EQ(op.toString(), "add r3, r1, r2 if p7 ;;");
}

/** Round-trip every opcode of every type with randomised fields. */
struct OpCase
{
    OpType type;
    Opcode opcode;
};

class OperationRoundTrip : public ::testing::TestWithParam<OpCase>
{
};

TEST_P(OperationRoundTrip, RandomFieldsSurvive)
{
    tepic::support::Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        Operation op =
            Operation::make(GetParam().type, GetParam().opcode);
        for (const auto &spec : formatFields(op.format())) {
            if (spec.kind == FieldKind::kOpType ||
                spec.kind == FieldKind::kOpcode ||
                spec.kind == FieldKind::kReserved) {
                continue;
            }
            const std::uint32_t value = std::uint32_t(
                rng.next() & ((std::uint64_t(1) << spec.width) - 1));
            op.setField(spec.kind, value);
        }
        const Operation back = Operation::decode(op.encode());
        EXPECT_EQ(back, op) << op.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OperationRoundTrip,
    ::testing::Values(
        OpCase{OpType::kInt, Opcode::kAdd},
        OpCase{OpType::kInt, Opcode::kSub},
        OpCase{OpType::kInt, Opcode::kMul},
        OpCase{OpType::kInt, Opcode::kDiv},
        OpCase{OpType::kInt, Opcode::kRem},
        OpCase{OpType::kInt, Opcode::kAnd},
        OpCase{OpType::kInt, Opcode::kOr},
        OpCase{OpType::kInt, Opcode::kXor},
        OpCase{OpType::kInt, Opcode::kShl},
        OpCase{OpType::kInt, Opcode::kShr},
        OpCase{OpType::kInt, Opcode::kSra},
        OpCase{OpType::kInt, Opcode::kMov},
        OpCase{OpType::kInt, Opcode::kLdi},
        OpCase{OpType::kInt, Opcode::kCmppEq},
        OpCase{OpType::kInt, Opcode::kCmppNe},
        OpCase{OpType::kInt, Opcode::kCmppLt},
        OpCase{OpType::kInt, Opcode::kCmppLe},
        OpCase{OpType::kInt, Opcode::kCmppGt},
        OpCase{OpType::kInt, Opcode::kCmppGe},
        OpCase{OpType::kFloat, Opcode::kFadd},
        OpCase{OpType::kFloat, Opcode::kFsub},
        OpCase{OpType::kFloat, Opcode::kFmul},
        OpCase{OpType::kFloat, Opcode::kFdiv},
        OpCase{OpType::kFloat, Opcode::kFmov},
        OpCase{OpType::kFloat, Opcode::kItof},
        OpCase{OpType::kFloat, Opcode::kFtoi},
        OpCase{OpType::kFloat, Opcode::kFcmppEq},
        OpCase{OpType::kFloat, Opcode::kFcmppLt},
        OpCase{OpType::kFloat, Opcode::kFcmppLe},
        OpCase{OpType::kMemory, Opcode::kLoad},
        OpCase{OpType::kMemory, Opcode::kStore},
        OpCase{OpType::kMemory, Opcode::kFload},
        OpCase{OpType::kMemory, Opcode::kFstore},
        OpCase{OpType::kBranch, Opcode::kBr},
        OpCase{OpType::kBranch, Opcode::kBrct},
        OpCase{OpType::kBranch, Opcode::kBrcf},
        OpCase{OpType::kBranch, Opcode::kCall},
        OpCase{OpType::kBranch, Opcode::kRet},
        OpCase{OpType::kBranch, Opcode::kBrlc}),
    [](const auto &info) {
        std::string name =
            std::string(opTypeName(info.param.type)) + "_" +
            tepic::isa::opcodeName(info.param.type,
                                   info.param.opcode);
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Mop, TailBitMaintenance)
{
    Mop mop;
    Operation a = Operation::make(OpType::kInt, Opcode::kAdd);
    Operation b = Operation::make(OpType::kInt, Opcode::kSub);
    mop.append(a);
    EXPECT_TRUE(mop.ops()[0].tail());
    mop.append(b);
    EXPECT_FALSE(mop.ops()[0].tail());
    EXPECT_TRUE(mop.ops()[1].tail());
}

TEST(Mop, MachineConstraints)
{
    const MachineConfig machine = MachineConfig::paperDefault();
    Mop mop;
    for (int i = 0; i < 6; ++i)
        mop.append(Operation::make(OpType::kInt, Opcode::kAdd));
    EXPECT_TRUE(mop.respectsMachine(machine));
    mop.append(Operation::make(OpType::kInt, Opcode::kAdd));
    EXPECT_FALSE(mop.respectsMachine(machine));  // 7 > issue width

    Mop mem_mop;
    mem_mop.append(Operation::make(OpType::kMemory, Opcode::kLoad));
    mem_mop.append(Operation::make(OpType::kMemory, Opcode::kStore));
    EXPECT_TRUE(mem_mop.respectsMachine(machine));
    mem_mop.append(Operation::make(OpType::kMemory, Opcode::kLoad));
    EXPECT_FALSE(mem_mop.respectsMachine(machine));  // 3 memory units
}

TEST(Machine, Latencies)
{
    EXPECT_EQ(operationLatency(
                  Operation::make(OpType::kInt, Opcode::kAdd)), 1u);
    EXPECT_EQ(operationLatency(
                  Operation::make(OpType::kInt, Opcode::kMul)), 3u);
    EXPECT_EQ(operationLatency(
                  Operation::make(OpType::kInt, Opcode::kDiv)), 8u);
    EXPECT_EQ(operationLatency(
                  Operation::make(OpType::kMemory, Opcode::kLoad)), 2u);
    EXPECT_EQ(operationLatency(
                  Operation::make(OpType::kFloat, Opcode::kFdiv)), 12u);
}

namespace {

/** A two-block straight-line program for image tests. */
VliwProgram
tinyProgram()
{
    VliwProgram prog;
    VliwBlock &b0 = prog.addBlock();
    Mop m0;
    Operation ldi = Operation::make(OpType::kInt, Opcode::kLdi);
    ldi.setDest(3);
    ldi.setImm(7);
    m0.append(ldi);
    Operation add = Operation::make(OpType::kInt, Opcode::kAdd);
    add.setDest(4);
    add.setSrc1(3);
    add.setSrc2(3);
    m0.append(add);
    b0.mops.push_back(m0);
    b0.fallthrough = 1;

    VliwBlock &b1 = prog.addBlock();
    Mop m1;
    Operation ret = Operation::make(OpType::kBranch, Opcode::kRet);
    ret.setSrc1(kRegLink);
    m1.append(ret);
    b1.mops.push_back(m1);
    return prog;
}

} // namespace

TEST(BaselineImage, LayoutAndRoundTrip)
{
    const VliwProgram prog = tinyProgram();
    const Image image = buildBaselineImage(prog);
    EXPECT_EQ(image.bitSize, 3 * kOpBits);
    EXPECT_EQ(image.blocks.size(), 2u);
    EXPECT_EQ(image.blocks[0].bitOffset % 8, 0u);  // byte aligned
    EXPECT_EQ(image.blocks[1].bitOffset % 8, 0u);
    EXPECT_EQ(image.blocks[0].numOps, 2u);
    EXPECT_EQ(image.blocks[0].numMops, 1u);

    const auto decoded = decodeBaselineImage(image);
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0][0], prog.blocks()[0].mops[0].ops()[0]);
    EXPECT_EQ(decoded[0][1], prog.blocks()[0].mops[0].ops()[1]);
    EXPECT_EQ(decoded[1][0], prog.blocks()[1].mops[0].ops()[0]);
}

TEST(Program, ValidateCatchesInteriorBranch)
{
    VliwProgram prog = tinyProgram();
    // Inject a branch into the middle of block 0.
    Mop branch_mop;
    Operation br = Operation::make(OpType::kBranch, Opcode::kBr);
    br.setTarget(1);
    branch_mop.append(br);
    prog.blocks()[0].mops.insert(prog.blocks()[0].mops.begin(),
                                 branch_mop);
    EXPECT_ANY_THROW(prog.validate(MachineConfig::paperDefault()));
}

TEST(Program, ValidateCatchesBrokenTailBit)
{
    VliwProgram prog = tinyProgram();
    prog.blocks()[0].mops[0].ops()[0].setTail(true);  // not last op
    EXPECT_ANY_THROW(prog.validate(MachineConfig::paperDefault()));
}

TEST(Program, CountsAndSizes)
{
    const VliwProgram prog = tinyProgram();
    EXPECT_EQ(prog.opCount(), 3u);
    EXPECT_EQ(prog.mopCount(), 2u);
    EXPECT_EQ(prog.baselineBits(), 120u);
}

} // namespace
