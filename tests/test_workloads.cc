/**
 * @file
 * Workload correctness: every tinkerc workload, compiled and emulated,
 * must produce exactly its native C++ reference result. This is the
 * master oracle for the compiler, scheduler, register allocator and
 * emulator acting together. Also checks the structural properties the
 * experiments rely on (footprints, trace shapes, DSP-kernel loop
 * sizes).
 */

#include <gtest/gtest.h>

#include "compiler/driver.hh"
#include "sim/emulator.hh"
#include "workloads/workload.hh"

namespace {

using tepic::compiler::compileSource;
using tepic::workloads::allWorkloads;
using tepic::workloads::Workload;
using tepic::workloads::workloadByName;

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, MatchesNativeReference)
{
    const Workload &w = workloadByName(GetParam());
    auto compiled = compileSource(w.source);
    auto result = tepic::sim::emulate(compiled.program, compiled.data);
    EXPECT_EQ(result.exitValue, w.reference())
        << "workload " << w.name
        << " diverged from its native reference";
    EXPECT_GT(result.dynamicOps, 10000u)
        << w.name << " should do non-trivial work";
}

TEST_P(WorkloadTest, ProfileGuidedRecompileMatchesToo)
{
    const Workload &w = workloadByName(GetParam());
    auto compiled = compileSource(w.source);
    auto first = tepic::sim::emulate(compiled.program, compiled.data);
    tepic::compiler::applyProfileAndRelayout(
        compiled, first.blockCounts,
        tepic::isa::MachineConfig::paperDefault());
    auto second = tepic::sim::emulate(compiled.program, compiled.data);
    EXPECT_EQ(second.exitValue, w.reference());
    // Straightened hot paths drop jumps, but speculative hoisting may
    // execute a few extra ops on taken paths; allow a 2% band.
    EXPECT_LE(second.dynamicOps,
              first.dynamicOps + first.dynamicOps / 50);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTest,
    ::testing::Values("compress", "gcc", "go", "ijpeg", "li",
                      "m88ksim", "perl", "vortex", "fir", "matmul"),
    [](const auto &info) { return info.param; });

TEST(WorkloadSuite, HasTenWorkloads)
{
    EXPECT_EQ(allWorkloads().size(), 10u);
}

TEST(WorkloadSuite, SpecShapedFootprintsExceedDspKernels)
{
    // The generated dispatcher families must give the SPEC-shaped
    // workloads a much larger static footprint than the DSP kernels.
    std::size_t min_spec = SIZE_MAX;
    std::size_t max_dsp = 0;
    for (const auto &w : allWorkloads()) {
        auto compiled = compileSource(w.source);
        const std::size_t bytes = compiled.program.baselineBits() / 8;
        if (w.isDspKernel)
            max_dsp = std::max(max_dsp, bytes);
        else
            min_spec = std::min(min_spec, bytes);
    }
    EXPECT_GT(min_spec, max_dsp);
}

TEST(WorkloadSuite, DispatcherWorkloadsExceedCacheCapacity)
{
    // gcc/go/m88ksim-style workloads must not fit the 16 KB cache, or
    // the capacity experiments of Figure 13 degenerate.
    for (const char *name : {"gcc", "go"}) {
        auto compiled = compileSource(workloadByName(name).source);
        EXPECT_GT(compiled.program.baselineBits() / 8, 16u * 1024)
            << name;
    }
}

} // namespace
