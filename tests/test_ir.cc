/**
 * @file
 * IR and CFG-analysis tests: successor/terminator rules, reverse
 * postorder, loop-depth detection, weight estimation, unreachable
 * removal, and module validation.
 */

#include <gtest/gtest.h>

#include "ir/analysis.hh"
#include "ir/ir.hh"

namespace {

using namespace tepic::ir;

IrInstr
jmp(std::uint32_t target)
{
    IrInstr instr;
    instr.op = IrOp::kJmp;
    instr.target0 = target;
    return instr;
}

IrInstr
br(Vreg cond, std::uint32_t then_b, std::uint32_t else_b)
{
    IrInstr instr;
    instr.op = IrOp::kBr;
    instr.src1 = cond;
    instr.target0 = then_b;
    instr.target1 = else_b;
    return instr;
}

IrInstr
ret()
{
    IrInstr instr;
    instr.op = IrOp::kRet;
    return instr;
}

IrInstr
konst(Vreg dest, std::int64_t value)
{
    IrInstr instr;
    instr.op = IrOp::kConst;
    instr.dest = dest;
    instr.imm = value;
    return instr;
}

/** Diamond: 0 -> {1, 2} -> 3(ret), with a self-loop on 2. */
IrFunction
diamondWithLoop()
{
    IrFunction fn;
    fn.name = "diamond";
    fn.blocks.resize(4);
    fn.numIntVregs = 2;
    fn.blocks[0].instrs.push_back(konst(0, 1));
    fn.blocks[0].instrs.push_back(br(0, 1, 2));
    fn.blocks[1].instrs.push_back(jmp(3));
    fn.blocks[2].instrs.push_back(konst(1, 0));
    fn.blocks[2].instrs.push_back(br(1, 2, 3));  // loop on itself
    fn.blocks[3].instrs.push_back(ret());
    return fn;
}

TEST(IrBasics, SuccessorsFollowTerminators)
{
    const IrFunction fn = diamondWithLoop();
    EXPECT_EQ(fn.blocks[0].successors(),
              (std::vector<std::uint32_t>{1, 2}));
    EXPECT_EQ(fn.blocks[1].successors(),
              (std::vector<std::uint32_t>{3}));
    EXPECT_TRUE(fn.blocks[3].successors().empty());
}

TEST(IrBasics, OperandClasses)
{
    EXPECT_EQ(destClass(IrOp::kAdd), RegClass::kInt);
    EXPECT_EQ(destClass(IrOp::kFadd), RegClass::kFloat);
    EXPECT_EQ(destClass(IrOp::kFtoi), RegClass::kInt);
    EXPECT_EQ(destClass(IrOp::kItof), RegClass::kFloat);
    EXPECT_EQ(destClass(IrOp::kStore), RegClass::kNone);
    EXPECT_EQ(src1Class(IrOp::kFtoi), RegClass::kFloat);
    EXPECT_EQ(src2Class(IrOp::kFstore), RegClass::kFloat);
    EXPECT_EQ(src1Class(IrOp::kBr), RegClass::kInt);
    // Float compares read floats but produce ints.
    EXPECT_EQ(destClass(IrOp::kFcmpLt), RegClass::kInt);
    EXPECT_EQ(src1Class(IrOp::kFcmpLt), RegClass::kFloat);
}

TEST(Analysis, ReversePostorderStartsAtEntry)
{
    const IrFunction fn = diamondWithLoop();
    const auto rpo = reversePostorder(fn);
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo.front(), 0u);
    // Every reachable block appears exactly once.
    EXPECT_EQ(rpo.size(), 4u);
}

TEST(Analysis, Predecessors)
{
    const IrFunction fn = diamondWithLoop();
    const auto preds = predecessors(fn);
    EXPECT_EQ(preds[0].size(), 0u);
    EXPECT_EQ(preds[3].size(), 2u);
    // Block 2 has the entry and itself.
    EXPECT_EQ(preds[2].size(), 2u);
}

TEST(Analysis, LoopDepths)
{
    const IrFunction fn = diamondWithLoop();
    const auto depths = loopDepths(fn);
    EXPECT_EQ(depths[0], 0u);
    EXPECT_EQ(depths[1], 0u);
    EXPECT_EQ(depths[2], 1u);  // self loop
    EXPECT_EQ(depths[3], 0u);
}

TEST(Analysis, NestedLoopDepths)
{
    // 0 -> 1 -> 2 -> 1 ... 1 -> 0? Build: 0(head outer) -> 1(head
    // inner) -> 1 (self), 1 -> 0 back edge, 0 -> 2 exit.
    IrFunction fn;
    fn.blocks.resize(3);
    fn.numIntVregs = 1;
    fn.blocks[0].instrs.push_back(konst(0, 1));
    fn.blocks[0].instrs.push_back(br(0, 1, 2));
    fn.blocks[1].instrs.push_back(br(0, 1, 0));
    fn.blocks[2].instrs.push_back(ret());
    const auto depths = loopDepths(fn);
    EXPECT_EQ(depths[0], 1u);
    EXPECT_EQ(depths[1], 2u);  // inner self loop + outer loop
    EXPECT_EQ(depths[2], 0u);
}

TEST(Analysis, EstimateWeightsScaleWithDepth)
{
    IrFunction fn = diamondWithLoop();
    estimateWeights(fn, 10.0);
    EXPECT_DOUBLE_EQ(fn.blocks[0].weight, 1.0);
    EXPECT_DOUBLE_EQ(fn.blocks[2].weight, 10.0);
}

TEST(Analysis, ApplyProfileOverridesWeights)
{
    IrFunction fn = diamondWithLoop();
    applyProfile(fn, {5, 6, 7, 8});
    EXPECT_DOUBLE_EQ(fn.blocks[2].weight, 7.0);
    EXPECT_ANY_THROW(applyProfile(fn, {1, 2}));
}

TEST(Analysis, RemoveUnreachableRemapsTargets)
{
    IrFunction fn;
    fn.blocks.resize(4);
    fn.numIntVregs = 1;
    // 0 -> 2 -> 3; block 1 unreachable.
    fn.blocks[0].instrs.push_back(jmp(2));
    fn.blocks[1].instrs.push_back(jmp(3));
    fn.blocks[2].instrs.push_back(jmp(3));
    fn.blocks[3].instrs.push_back(ret());
    removeUnreachable(fn);
    ASSERT_EQ(fn.blocks.size(), 3u);
    EXPECT_EQ(fn.blocks[0].instrs.back().target0, 1u);  // remapped
    EXPECT_EQ(fn.blocks[1].instrs.back().target0, 2u);
}

TEST(Module, ValidateCatchesMissingTerminator)
{
    IrModule module;
    IrFunction fn;
    fn.name = "bad";
    fn.blocks.resize(1);
    fn.blocks[0].instrs.push_back(konst(0, 1));  // no terminator
    module.functions.push_back(std::move(fn));
    EXPECT_ANY_THROW(module.validate());
}

TEST(Module, ValidateCatchesBadSuccessor)
{
    IrModule module;
    IrFunction fn;
    fn.name = "bad";
    fn.blocks.resize(1);
    fn.blocks[0].instrs.push_back(jmp(7));  // out of range
    module.functions.push_back(std::move(fn));
    EXPECT_ANY_THROW(module.validate());
}

TEST(Module, FindFunction)
{
    IrModule module;
    IrFunction fn;
    fn.name = "alpha";
    fn.blocks.resize(1);
    fn.blocks[0].instrs.push_back(ret());
    module.functions.push_back(std::move(fn));
    EXPECT_EQ(module.findFunction("alpha"), 0);
    EXPECT_EQ(module.findFunction("beta"), -1);
}

} // namespace
