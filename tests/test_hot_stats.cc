/**
 * @file
 * Dynamic program-behavior observability tests: the per-block
 * cycle/stall attribution must tile the simulator's own totals, the
 * branch-site ledger must tile the mispredict stall counter (with the
 * one-behind attribution and the unconsumed final prediction handled
 * exactly), the phase matrix columns must reproduce the per-block
 * fetch counts, the recorder's architectural transparency (on/off
 * bit-identity), and the tepic-hot-v1 session report (determinism,
 * shape keying, round-trip through the test JSON parser).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/driver.hh"
#include "fetch/fetch_sim.hh"
#include "fetch/hot_stats.hh"
#include "isa/baseline.hh"
#include "schemes/huffman_scheme.hh"
#include "sim/emulator.hh"

#include "json_mini.hh"

namespace {

using namespace tepic;
using fetch::HotStats;
using fetch::HotStatsConfig;
using fetch::SchemeClass;

#if TEPIC_HOTSTATS_ENABLED

using fetch::HotStatsRecorder;

HotStatsConfig
enabledConfig(unsigned epochs = 2, unsigned top = 32)
{
    HotStatsConfig c;
    c.enabled = true;
    c.phaseEpochs = epochs;
    c.topBlocks = top;
    return c;
}

/**
 * A hand-driven 6-event trace over 4 static blocks (b0 b1 b0 b1 b0
 * b2), replayed through the recorder exactly the way simulateFetch
 * drives it: onBlock() once the event's cycle accounting is known,
 * onBranchSite() for the prediction the event makes at its end. Site
 * b1 mispredicts at event 1, so the 3-cycle repair bubble lands in
 * event 2's stall and must be charged back to b1; the final event's
 * prediction (site b2, wrong) is never consumed.
 */
HotStats
handTrace()
{
    HotStatsRecorder rec(4, 6, enabledConfig());
    rec.onBlock(0, 2, 0, 0);
    rec.onBranchSite(0, true, true);
    rec.onBlock(1, 3, 1, 0);
    rec.onBranchSite(1, false, false);  // wrong: bubble next event
    rec.onBlock(0, 5, 3, 3);            // b1's repair stall lands here
    rec.onBranchSite(0, true, true);
    rec.onBlock(1, 3, 1, 0);
    rec.onBranchSite(1, true, true);
    rec.onBlock(0, 2, 0, 0);
    rec.onBranchSite(0, false, true);
    rec.onBlock(2, 5, 3, 0);
    rec.onBranchSite(2, true, false);   // wrong, never consumed
    return rec.finish();
}

TEST(HotRecorder, HandTraceTilesEveryCounter)
{
    const HotStats hs = handTrace();
    ASSERT_TRUE(hs.recorded);
    hs.assertTiling();

    EXPECT_EQ(hs.blocksSimulated, 6u);
    EXPECT_EQ(hs.cycles, 20u);
    EXPECT_EQ(hs.stallCycles, 8u);
    EXPECT_EQ(hs.executedBlocks(), 3u);

    const std::vector<std::uint64_t> fetches = {3, 2, 1, 0};
    const std::vector<std::uint64_t> cycles = {9, 6, 5, 0};
    const std::vector<std::uint64_t> stalls = {3, 2, 3, 0};
    EXPECT_EQ(hs.blockFetches, fetches);
    EXPECT_EQ(hs.blockCycles, cycles);
    EXPECT_EQ(hs.blockStalls, stalls);
}

TEST(HotRecorder, SiteLedgerChargesTheMispredictingSite)
{
    const HotStats hs = handTrace();
    EXPECT_EQ(hs.taken, 4u);
    EXPECT_EQ(hs.notTaken, 2u);
    EXPECT_EQ(hs.predictions(), hs.blocksSimulated);
    EXPECT_EQ(hs.mispredicts, 2u);
    EXPECT_EQ(hs.mispredictStallCycles, 3u);
    EXPECT_EQ(hs.unconsumedMispredicts, 1u);

    const std::vector<std::uint64_t> taken = {2, 1, 1, 0};
    const std::vector<std::uint64_t> not_taken = {1, 1, 0, 0};
    const std::vector<std::uint64_t> mis = {0, 1, 1, 0};
    // b1's wrong prediction stalls event 2 (a b0 fetch), but the
    // ledger charges the *site* that guessed wrong, not the victim.
    const std::vector<std::uint64_t> mis_stall = {0, 3, 0, 0};
    EXPECT_EQ(hs.siteTaken, taken);
    EXPECT_EQ(hs.siteNotTaken, not_taken);
    EXPECT_EQ(hs.siteMispredicts, mis);
    EXPECT_EQ(hs.siteMispredictStall, mis_stall);
}

TEST(HotRecorder, PhaseEpochsComeFromTheEventIndex)
{
    const HotStats hs = handTrace();
    ASSERT_EQ(hs.phaseEpochs, 2u);
    ASSERT_EQ(hs.phaseFetches.size(), 2u * 4u);
    // Events 0-2 land in epoch 0 (b0 b1 b0), events 3-5 in epoch 1
    // (b1 b0 b2) — a pure function of the index, never wall clock.
    const std::vector<std::uint64_t> expected = {2, 1, 0, 0,
                                                 1, 1, 1, 0};
    EXPECT_EQ(hs.phaseFetches, expected);
    for (std::uint32_t b = 0; b < 4; ++b) {
        EXPECT_EQ(hs.phaseFetches[b] + hs.phaseFetches[4 + b],
                  hs.blockFetches[b])
            << "phase column " << b;
    }
}

TEST(HotRecorder, HotOrderAndCoverageAreDeterministic)
{
    const HotStats hs = handTrace();
    const std::vector<std::uint32_t> order = {0, 1, 2, 3};
    EXPECT_EQ(hs.hotOrder(), order);
    EXPECT_EQ(hs.topCoverage(1), 3u);
    EXPECT_EQ(hs.topCoverage(2), 5u);
    EXPECT_EQ(hs.topCoverage(3), 6u);
    // Monotone and saturating: k past the end covers everything.
    EXPECT_EQ(hs.topCoverage(4), hs.blocksSimulated);
    EXPECT_EQ(hs.topCoverage(99), hs.blocksSimulated);
    EXPECT_EQ(hs.topCoverage(0), 0u);
}

TEST(HotRecorder, MergeSumsSameShapeRecords)
{
    HotStats merged;  // unrecorded: adopts
    merged.merge(handTrace());
    merged.merge(handTrace());
    EXPECT_TRUE(merged.recorded);
    EXPECT_EQ(merged.blocksSimulated, 12u);
    EXPECT_EQ(merged.blockFetches[0], 6u);
    EXPECT_EQ(merged.siteMispredictStall[1], 6u);
    // One unconsumed final prediction per run: they add up.
    EXPECT_EQ(merged.unconsumedMispredicts, 2u);
    EXPECT_EQ(merged.mispredicts, 4u);
    merged.assertTiling();
}

// ---------------------------------------------------------------------------
// Whole-simulation coverage.

/** One compiled+emulated workload for the sim-level tests. */
struct SimFixture
{
    compiler::CompiledProgram compiled;
    sim::EmulationResult emu;
    isa::Image baseImage;
    schemes::CompressedImage full;

    SimFixture()
        : compiled(compiler::compileSource(R"(
            func f(x): int {
                if (x % 3 == 0) { return x * 2; }
                return x + 1;
            }
            func main(): int {
                var s = 0;
                for (var i = 0; i < 400; i = i + 1) { s = s + f(i); }
                return s;
            }
          )")),
          emu(sim::emulate(compiled.program, compiled.data)),
          baseImage(isa::buildBaselineImage(compiled.program)),
          full(schemes::compressFull(compiled.program))
    {
    }

    const isa::Image &
    imageFor(SchemeClass scheme) const
    {
        return scheme == SchemeClass::kCompressed ? full.image
                                                  : baseImage;
    }
};

TEST(FetchSimHotStats, TilesAndCrossChecksAllSchemes)
{
    SimFixture fx;
    for (auto scheme :
         {SchemeClass::kBase, SchemeClass::kCompressed,
          SchemeClass::kTailored}) {
        SCOPED_TRACE(fetch::schemeClassName(scheme));
        auto config = fetch::FetchConfig::paper(scheme);
        config.hotStats.enabled = true;
        const auto stats = fetch::simulateFetch(
            fx.imageFor(scheme), fx.compiled.program, fx.emu.trace,
            config);
        const HotStats &hs = stats.hotStats;
        ASSERT_TRUE(hs.recorded);
        hs.assertTiling();
        // Cross-checks against the simulator's own counters.
        EXPECT_EQ(hs.blocksSimulated, stats.blocksFetched);
        EXPECT_EQ(hs.cycles, stats.cycles);
        EXPECT_EQ(hs.stallCycles, stats.stallCycles);
        EXPECT_EQ(hs.mispredictStallCycles,
                  stats.mispredictStallCycles);
        // Every mispredict the site ledger saw is either one the
        // simulator repaired or the unconsumed final prediction.
        EXPECT_EQ(hs.mispredicts,
                  stats.predictionsWrong + hs.unconsumedMispredicts);
        EXPECT_LE(hs.unconsumedMispredicts, 1u);
        EXPECT_GT(hs.executedBlocks(), 0u);
        EXPECT_LE(hs.executedBlocks(), hs.staticBlocks);
        EXPECT_EQ(hs.topCoverage(hs.staticBlocks),
                  hs.blocksSimulated);
    }
}

/** The recorder is purely observational: switching it on must not
 *  move a single architectural counter. */
TEST(FetchSimHotStats, RecordingIsArchitecturallyInvisible)
{
    SimFixture fx;
    for (auto scheme :
         {SchemeClass::kBase, SchemeClass::kCompressed,
          SchemeClass::kTailored}) {
        SCOPED_TRACE(fetch::schemeClassName(scheme));
        const auto plain = fetch::simulateFetch(
            fx.imageFor(scheme), fx.compiled.program, fx.emu.trace,
            fetch::FetchConfig::paper(scheme));
        auto config = fetch::FetchConfig::paper(scheme);
        config.hotStats.enabled = true;
        const auto recorded = fetch::simulateFetch(
            fx.imageFor(scheme), fx.compiled.program, fx.emu.trace,
            config);
        EXPECT_FALSE(plain.hotStats.recorded);
        EXPECT_TRUE(recorded.hotStats.recorded);
        EXPECT_EQ(recorded.cycles, plain.cycles);
        EXPECT_EQ(recorded.stallCycles, plain.stallCycles);
        EXPECT_EQ(recorded.mispredictStallCycles,
                  plain.mispredictStallCycles);
        EXPECT_EQ(recorded.predictionsWrong, plain.predictionsWrong);
        EXPECT_EQ(recorded.l1Hits, plain.l1Hits);
        EXPECT_EQ(recorded.l1Misses, plain.l1Misses);
        EXPECT_EQ(recorded.busBitFlips, plain.busBitFlips);
        EXPECT_EQ(recorded.bytesTransferred, plain.bytesTransferred);
    }
}

/** Two identical runs produce bit-identical HotStats — the
 *  determinism the exact-gated HOT report relies on. */
TEST(FetchSimHotStats, RerunsAreBitIdentical)
{
    SimFixture fx;
    auto config = fetch::FetchConfig::paper(SchemeClass::kCompressed);
    config.hotStats.enabled = true;
    auto run = [&] {
        return fetch::simulateFetch(fx.full.image, fx.compiled.program,
                                    fx.emu.trace, config);
    };
    const HotStats a = run().hotStats;
    const HotStats b = run().hotStats;
    EXPECT_EQ(a.blockFetches, b.blockFetches);
    EXPECT_EQ(a.blockCycles, b.blockCycles);
    EXPECT_EQ(a.blockStalls, b.blockStalls);
    EXPECT_EQ(a.siteMispredicts, b.siteMispredicts);
    EXPECT_EQ(a.siteMispredictStall, b.siteMispredictStall);
    EXPECT_EQ(a.phaseFetches, b.phaseFetches);
    EXPECT_EQ(a.unconsumedMispredicts, b.unconsumedMispredicts);
}

// ---------------------------------------------------------------------------
// Session store + tepic-hot-v1 report.

struct SessionGuard
{
    SessionGuard() { fetch::hotstats::resetForTest(); }
    ~SessionGuard() { fetch::hotstats::resetForTest(); }
};

TEST(HotReport, RecordOrderDoesNotChangeTheReport)
{
    SessionGuard guard;
    const HotStats rec = handTrace();

    fetch::hotstats::startSession();
    fetch::hotstats::record("go", SchemeClass::kBase, rec);
    fetch::hotstats::record("gcc", SchemeClass::kCompressed, rec);
    const std::string forward = fetch::hotstats::reportJson("t");

    fetch::hotstats::startSession();
    fetch::hotstats::record("gcc", SchemeClass::kCompressed, rec);
    fetch::hotstats::record("go", SchemeClass::kBase, rec);
    const std::string backward = fetch::hotstats::reportJson("t");

    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward, fetch::hotstats::reportJson("t"));
}

TEST(HotReport, RoundTripsThroughJsonWithExactTiling)
{
    SessionGuard guard;
    fetch::hotstats::startSession();
    fetch::hotstats::record("go", SchemeClass::kCompressed,
                            handTrace());
    const auto doc =
        testjson::parse(fetch::hotstats::reportJson("unit"));
    EXPECT_EQ(doc.at("schema").str, "tepic-hot-v1");
    EXPECT_EQ(doc.at("name").str, "unit");
    const auto &scheme =
        doc.at("structure").at("workloads").at("go").at("compressed");
    const auto &totals = scheme.at("totals");
    EXPECT_EQ(totals.at("blocks_simulated").number, 6.0);
    EXPECT_EQ(totals.at("executed_blocks").number, 3.0);

    // Top rows + rest re-tile the totals in the rendered document.
    const auto &blocks = scheme.at("blocks");
    double top_fetches = 0;
    for (const auto &row : blocks.at("top").array)
        top_fetches += row.array.at(1).number;
    EXPECT_EQ(top_fetches + blocks.at("rest").at("fetches").number,
              totals.at("blocks_simulated").number);

    const auto &bt = scheme.at("branch_sites").at("totals");
    EXPECT_EQ(bt.at("predictions").number,
              bt.at("taken").number + bt.at("not_taken").number);
    EXPECT_EQ(bt.at("unconsumed_mispredicts").number, 1.0);

    const auto &phase = scheme.at("phase");
    ASSERT_EQ(phase.at("matrix").array.size(),
              std::size_t(scheme.at("config")
                              .at("phase_epochs")
                              .number));
}

TEST(HotReport, ShapeSweepsAreKeyedApartNotMerged)
{
    SessionGuard guard;
    fetch::hotstats::startSession();
    fetch::hotstats::record("go", SchemeClass::kBase, handTrace());
    // Same workload+scheme, different program shape: must not merge.
    HotStatsRecorder other(8, 4, enabledConfig(4));
    other.onBlock(5, 1, 0, 0);
    other.onBranchSite(5, true, true);
    fetch::hotstats::record("go", SchemeClass::kBase, other.finish());
    const auto doc = testjson::parse(fetch::hotstats::reportJson("t"));
    const auto &workloads = doc.at("structure").at("workloads");
    EXPECT_TRUE(workloads.has("go"));
    EXPECT_TRUE(workloads.has("go@B8xE4"));
    EXPECT_EQ(workloads.at("go").at("base").at("config").at(
                                             "static_blocks").number,
              4.0);
    EXPECT_EQ(workloads.at("go@B8xE4")
                  .at("base")
                  .at("config")
                  .at("static_blocks")
                  .number,
              8.0);
}

TEST(HotReport, DisabledSessionRecordsNothing)
{
    SessionGuard guard;
    EXPECT_FALSE(fetch::hotstats::enabled());
    fetch::hotstats::record("go", SchemeClass::kBase, handTrace());
    const auto doc = testjson::parse(fetch::hotstats::reportJson("t"));
    EXPECT_TRUE(doc.at("structure").at("workloads").object.empty());
}

#endif // TEPIC_HOTSTATS_ENABLED

// ---------------------------------------------------------------------------
// Unconditional: the report stays a valid document in disabled
// builds, and an unrecorded HotStats is inert.

TEST(HotReport, EmptyReportIsValidJson)
{
    fetch::hotstats::resetForTest();
    const auto doc =
        testjson::parse(fetch::hotstats::reportJson("empty"));
    EXPECT_EQ(doc.at("schema").str, "tepic-hot-v1");
    EXPECT_TRUE(doc.at("structure").at("workloads").isObject());
}

TEST(HotStatsStruct, UnrecordedIsInert)
{
    HotStats stats;
    EXPECT_FALSE(stats.recorded);
    stats.assertTiling();  // no-op, must not fire
    HotStats other;
    stats.merge(other);  // merging nothing into nothing
    EXPECT_FALSE(stats.recorded);
    EXPECT_EQ(stats.mispredictRate(), 0.0);
    EXPECT_EQ(stats.executedBlocks(), 0u);
    EXPECT_EQ(stats.topCoverage(5), 0u);
}

} // namespace
