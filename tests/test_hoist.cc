/**
 * @file
 * Speculative-hoisting tests: semantics preservation across the
 * oracle programs, the S-bit marking, safety restrictions (memory,
 * predicates, faulting ops never move), and the ILP benefit.
 */

#include <gtest/gtest.h>

#include "asmgen/hoist.hh"
#include "compiler/driver.hh"
#include "sim/emulator.hh"
#include "workloads/workload.hh"

namespace {

using namespace tepic;

compiler::CompileOptions
withHoist(bool enabled)
{
    compiler::CompileOptions options;
    options.hoist.enabled = enabled;
    return options;
}

TEST(Hoist, SemanticsPreservedOnBranchyPrograms)
{
    const char *programs[] = {
        R"(func main(): int {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i % 3 == 0) { s = s + i * 7; }
                else { s = s - i; }
            }
            return s;
        })",
        R"(var t[32];
        func main(): int {
            var acc = 1;
            for (var i = 0; i < 32; i = i + 1) {
                if (acc & 1) { t[i] = acc; acc = acc * 3 + 1; }
                else { t[i] = 0 - acc; acc = acc / 2; }
            }
            var s = 0;
            for (var i = 0; i < 32; i = i + 1) { s = s ^ t[i]; }
            return s;
        })",
    };
    for (const char *src : programs) {
        auto on = compiler::compileSource(src, withHoist(true));
        auto off = compiler::compileSource(src, withHoist(false));
        EXPECT_EQ(sim::emulate(on.program, on.data).exitValue,
                  sim::emulate(off.program, off.data).exitValue);
    }
}

TEST(Hoist, WorkloadOraclesSurviveHoisting)
{
    // The strongest check: two full workloads, hoisting on, exact
    // oracle match. (The whole suite runs with hoisting on in
    // test_workloads — this pins the property to the pass.)
    for (const char *name : {"go", "m88ksim"}) {
        const auto &w = workloads::workloadByName(name);
        auto compiled =
            compiler::compileSource(w.source, withHoist(true));
        EXPECT_GT(compiled.hoistStats.hoistedOps, 0u) << name;
        EXPECT_EQ(sim::emulate(compiled.program,
                               compiled.data).exitValue,
                  w.reference())
            << name;
    }
}

TEST(Hoist, MarksSpeculativeBit)
{
    const char *src = R"(
        func main(): int {
            var s = 1;
            for (var i = 0; i < 50; i = i + 1) {
                if (i & 1) { s = s * 2 + 1; s = s ^ 3; s = s + 7; }
                else { s = s + 1; }
            }
            return s;
        }
    )";
    auto on = compiler::compileSource(src, withHoist(true));
    unsigned speculative = 0;
    for (const auto &blk : on.program.blocks())
        for (const auto &mop : blk.mops)
            for (const auto &op : mop.ops())
                if (op.speculative())
                    ++speculative;
    EXPECT_EQ(speculative, on.hoistStats.hoistedOps);

    auto off = compiler::compileSource(src, withHoist(false));
    for (const auto &blk : off.program.blocks())
        for (const auto &mop : blk.mops)
            for (const auto &op : mop.ops())
                EXPECT_FALSE(op.speculative());
    EXPECT_EQ(off.hoistStats.hoistedOps, 0u);
}

TEST(Hoist, NeverMovesMemoryBranchesOrFaultingOps)
{
    // Every speculative op in the output must be a hoistable kind.
    const auto &w = workloads::workloadByName("vortex");
    auto compiled = compiler::compileSource(w.source, withHoist(true));
    for (const auto &blk : compiled.program.blocks()) {
        for (const auto &mop : blk.mops) {
            for (const auto &op : mop.ops()) {
                if (!op.speculative())
                    continue;
                EXPECT_FALSE(op.isMemory());
                EXPECT_FALSE(op.isBranch());
                EXPECT_EQ(op.pred(), isa::kPredTrue);
                EXPECT_FALSE(op.opType() == isa::OpType::kInt &&
                             (op.opcode() == isa::Opcode::kDiv ||
                              op.opcode() == isa::Opcode::kRem));
                EXPECT_NE(op.format(), isa::Format::kIntCmpp);
            }
        }
    }
}

TEST(Hoist, RaisesIlpOnBranchyCode)
{
    const auto &w = workloads::workloadByName("go");
    auto on = compiler::compileSource(w.source, withHoist(true));
    auto off = compiler::compileSource(w.source, withHoist(false));
    // Fewer MOPs for (almost) the same ops = denser schedule.
    EXPECT_GT(on.schedStats.ilp(), off.schedStats.ilp());
}

TEST(Hoist, BudgetRespected)
{
    compiler::CompileOptions tight;
    tight.hoist.maxOpsPerEdge = 1;
    const auto &w = workloads::workloadByName("go");
    auto one = compiler::compileSource(w.source, tight);
    auto four = compiler::compileSource(w.source, withHoist(true));
    EXPECT_LE(one.hoistStats.hoistedOps, four.hoistStats.hoistedOps);
    EXPECT_LE(one.hoistStats.hoistedOps, one.hoistStats.edgesConsidered);
}

} // namespace
